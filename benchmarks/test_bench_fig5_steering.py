"""Fig. 5 — steering traces of the trained IL policy vs the demonstrator.

The paper observes that the IL policy produces steering similar to the human
driver but stepped (less smooth) because of action discretisation.  The
reproduction checks that the IL steering trace only takes the discrete bin
values while the demonstrator's is continuous.
"""

import numpy as np
import pytest

from repro.eval.experiments import fig5_steering_experiment


@pytest.mark.benchmark(group="fig5")
def test_fig5_steering_comparison(benchmark, trained_policy, runner):
    comparison = benchmark.pedantic(
        fig5_steering_experiment,
        kwargs=dict(policy=trained_policy, seed=0, runner=runner),
        rounds=1,
        iterations=1,
    )
    print()
    print(f"expert frames: {comparison.expert_times.size}, IL frames: {comparison.il_times.size}")
    print(f"expert distinct steering values: {np.unique(np.round(comparison.expert_steering, 3)).size}")
    print(f"IL distinct steering values:     {comparison.il_distinct_values}")

    assert comparison.expert_times.size > 0
    assert comparison.il_times.size > 0
    # The discretised IL policy uses at most the steering-bin count per gear
    # while the demonstrator's continuous commands take many more values.
    assert comparison.il_is_stepped
    assert np.unique(np.round(comparison.expert_steering, 3)).size > comparison.il_distinct_values
    # Steering commands stay within the normalised range.
    assert np.all(np.abs(comparison.il_steering) <= 1.0)
