"""Contention micro-bench for the space-time reservation layer.

Two arms, both appended to ``BENCH_planner.json`` (rendered by
``benchmarks/report_trajectory.py``):

* **Table-query latency** — the three query surfaces every planner layer
  rides (`pose_clearance_at` batched broad phase, `conflicts_at` two-phase
  schedule check, `time_to_conflict` horizon scan) timed on the
  ``multi-ego-2`` table twice: bare (patrols only) and contended (two
  rival-ego committed windows published on top).  The contended/bare ratio
  is the per-claim query overhead multi-ego coordination pays.
* **2-ego vs solo throughput** — the coordinated ``multi-ego-2`` cohort
  (shared ledger, ``coordinate=True``) against the same two specs run
  uncoordinated, reporting episodes/sec for each and the cohort's
  deadlock rate (fraction of episodes that fail to park before the time
  limit).  Coordination must never deadlock the fleet: the rate is
  asserted at exactly 0.0 even in smoke mode, because the outcome is
  deterministic; only wall-clock thresholds hide behind the smoke flag.

Run through pytest (``python -m pytest benchmarks/bench_reservation.py``)
or directly (``PYTHONPATH=src python benchmarks/bench_reservation.py``
when the package is not installed).  As with the other benches,
``ICOIL_BENCH_SMOKE=1`` keeps the code executed on every change while
disabling the latency thresholds.
"""

from __future__ import annotations

import math
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_io import append_record  # noqa: E402

from repro.api import ControllerContext, EpisodeSpec, TimeLayerSpec
from repro.geometry.se2 import SE2
from repro.planning.reservation import Reservation, ReservationTable
from repro.serve.fleet import run_specs_fleet
from repro.vehicle.params import VehicleParams
from repro.world.scenario import (
    DifficultyLevel,
    ScenarioConfig,
    SpawnMode,
    build_scenario,
)
from repro.world.world import EpisodeStatus

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PLANNER = REPO_ROOT / "BENCH_planner.json"
SMOKE = os.environ.get("ICOIL_BENCH_SMOKE") == "1"
REPEATS = 2 if SMOKE else 5
QUERY_POSES = 64

# Headline metrics shared with the summary record (filled by the arms).
_HEADLINE: dict = {}


# ---------------------------------------------------------------------------
# Table construction
# ---------------------------------------------------------------------------
def build_table() -> ReservationTable:
    """The table ego 0 of ``multi-ego-2`` builds: patrols, no rivals yet."""
    config = ScenarioConfig(
        scenario_name="multi-ego-2",
        seed=3,
        difficulty=DifficultyLevel.NORMAL,
        spawn_mode=SpawnMode.CLOSE,
        num_dynamic_obstacles=1,
        layout_params={"ego_index": 0},
    )
    context = ControllerContext(
        build_scenario(config), time_layer=TimeLayerSpec(enabled=True)
    )
    return context.reservations


def rival_reservation(owner: str, y: float, direction: float) -> Reservation:
    """A rival ego's committed window: one aisle traversal at ~2 m/s."""
    params = VehicleParams()
    xs = np.linspace(8.0, 38.0, 8) if direction > 0 else np.linspace(38.0, 8.0, 8)
    heading = 0.0 if direction > 0 else math.pi
    poses = tuple((float(x), y, heading) for x in xs)
    times = tuple(float(2.0 * index) for index in range(len(poses)))
    return Reservation(
        owner=owner,
        priority=0,
        poses=poses,
        times=times,
        length=params.length,
        width=params.width,
        speed=2.0,
        kind="ego",
    )


def contended_table() -> ReservationTable:
    table = build_table()
    table.add(rival_reservation("rival-0", 11.0, +1.0))
    table.add(rival_reservation("rival-1", 13.5, -1.0))
    return table


def query_schedule(table: ReservationTable):
    """A timed rear-axle pose schedule spanning the aisle and the horizon."""
    xs = np.linspace(5.0, 40.0, QUERY_POSES)
    poses = [SE2(float(x), 11.0, 0.0) for x in xs]
    times = np.linspace(0.0, table.horizon, QUERY_POSES)
    pose_array = np.array([[pose.x, pose.y, pose.theta] for pose in poses])
    return poses, pose_array, times


def _time_query(fn, iterations: int) -> float:
    """Min-of-REPEATS microseconds per call, each repeat averaging a loop."""
    best = float("inf")
    for _ in range(REPEATS):
        begin = time.perf_counter()
        for _ in range(iterations):
            fn()
        best = min(best, (time.perf_counter() - begin) / iterations)
    return best * 1e6


# ---------------------------------------------------------------------------
# Arm 1: table-query latency, bare vs contended
# ---------------------------------------------------------------------------
def test_bench_reservation_query_latency():
    iterations = 5 if SMOKE else 20
    latencies = {}
    for arm, table in (("bare", build_table()), ("contended", contended_table())):
        poses, pose_array, times = query_schedule(table)
        margin = table.yield_margin
        queries = {
            "pose_clearance_at": lambda: table.pose_clearance_at(
                pose_array, times, margin=margin
            ),
            "conflicts_at": lambda: table.conflicts_at(poses, times, margin),
            "time_to_conflict": lambda: table.time_to_conflict(
                np.array([22.0, 11.0]), 0.0
            ),
        }
        for query, fn in queries.items():
            us_per_call = _time_query(fn, iterations)
            latencies[(arm, query)] = us_per_call
            append_record(
                BENCH_PLANNER,
                {
                    "event": "reservation_query_bench",
                    "arm": arm,
                    "query": query,
                    "poses": QUERY_POSES,
                    "reservations": len(table.active()),
                    "us_per_call": round(us_per_call, 1),
                    "us_per_pose": round(us_per_call / QUERY_POSES, 2),
                },
            )

    query_us = latencies[("contended", "conflicts_at")]
    overhead = query_us / max(latencies[("bare", "conflicts_at")], 1e-9)
    print(
        f"\ncontended conflicts_at: {query_us:.0f} us/call "
        f"({QUERY_POSES} poses, {overhead:.2f}x bare table)"
    )
    if not SMOKE:
        # Generous ceilings: the batched broad phase proves typical
        # schedules clear without touching the SAT narrow phase, so a full
        # 64-pose conflict check must stay well under a control period.
        assert query_us < 20_000.0, f"conflicts_at took {query_us:.0f} us"
        assert overhead < 25.0, f"two rival claims cost {overhead:.2f}x"
    _HEADLINE["query_us"] = query_us


# ---------------------------------------------------------------------------
# Arm 2: 2-ego coordinated cohort vs solo baseline
# ---------------------------------------------------------------------------
def _ego_spec(ego_index: int, spawn_mode: SpawnMode):
    return EpisodeSpec(
        method="expert",
        scenario=ScenarioConfig(
            scenario_name="multi-ego-2",
            seed=3,
            difficulty=DifficultyLevel.NORMAL,
            spawn_mode=spawn_mode,
            layout_params={"ego_index": ego_index},
        ),
        time_layer=TimeLayerSpec(enabled=True),
        time_limit=120.0,
    )


def _cohort():
    return [_ego_spec(0, SpawnMode.CLOSE), _ego_spec(1, SpawnMode.REMOTE)]


def test_bench_reservation_contention():
    rounds = 1 if SMOKE else 2
    stats = {}
    for arm, coordinate in (("solo", False), ("coordinated", True)):
        wall = 0.0
        outcomes = []
        for _ in range(rounds):
            begin = time.perf_counter()
            round_outcomes, _ = run_specs_fleet(_cohort(), coordinate=coordinate)
            wall += time.perf_counter() - begin
            outcomes.extend(round_outcomes)
        episodes = len(outcomes)
        parked = sum(
            1 for o in outcomes if o.result.status == EpisodeStatus.PARKED
        )
        eps = episodes / wall if wall > 0 else float("inf")
        deadlock_rate = (episodes - parked) / episodes
        stats[arm] = {"eps": eps, "deadlock_rate": deadlock_rate, "parked": parked}
        append_record(
            BENCH_PLANNER,
            {
                "event": "reservation_contention_bench",
                "arm": arm,
                "episodes": episodes,
                "wall_s": round(wall, 3),
                "episodes_per_sec": round(eps, 3),
                "parked": parked,
                "deadlock_rate": round(deadlock_rate, 3),
            },
            results=[o.result for o in outcomes],
        )

    solo_eps = stats["solo"]["eps"]
    coordinated_eps = stats["coordinated"]["eps"]
    deadlock_rate = stats["coordinated"]["deadlock_rate"]
    throughput_ratio = coordinated_eps / solo_eps if solo_eps > 0 else float("inf")
    print(
        f"\n2-ego cohort: solo {solo_eps:.2f} eps, coordinated "
        f"{coordinated_eps:.2f} eps ({throughput_ratio:.2f}x), "
        f"deadlock rate {deadlock_rate:.2f}"
    )
    # Parking and deadlock behaviour is deterministic (see DETERMINISM.md),
    # so these hold even in smoke mode; only wall-clock gates are skipped.
    assert deadlock_rate == 0.0, f"coordinated cohort deadlock rate {deadlock_rate}"
    assert stats["solo"]["deadlock_rate"] == 0.0
    if not SMOKE:
        # Yielding costs steps, not solver time: the coordinated cohort may
        # drive longer episodes but must stay within 3x of solo throughput.
        assert throughput_ratio > 1.0 / 3.0, (
            f"coordination collapsed throughput to {throughput_ratio:.2f}x solo"
        )
    _HEADLINE.update(
        solo_eps=solo_eps,
        coordinated_eps=coordinated_eps,
        deadlock_rate=deadlock_rate,
    )


def test_bench_reservation_summary():
    """One summary record with the arms' headline metrics (runs last)."""
    if "query_us" not in _HEADLINE:
        test_bench_reservation_query_latency()
    if "coordinated_eps" not in _HEADLINE:
        test_bench_reservation_contention()
    append_record(
        BENCH_PLANNER,
        {
            "event": "reservation_bench_summary",
            "query_us": round(_HEADLINE["query_us"], 1),
            "solo_eps": round(_HEADLINE["solo_eps"], 3),
            "coordinated_eps": round(_HEADLINE["coordinated_eps"], 3),
            "deadlock_rate": round(_HEADLINE["deadlock_rate"], 3),
        },
    )


def main() -> None:
    test_bench_reservation_summary()


if __name__ == "__main__":
    main()
