"""Fig. 6 — parking processes and trajectories of iCOIL vs pure IL.

The paper shows iCOIL completing the maneuver collision-free on the normal
level while pure IL fails.  The reproduction runs both methods on the same
normal-level scenario and checks that iCOIL's outcome is at least as good,
and that its trajectory makes real progress towards the parking space.
"""

import numpy as np
import pytest

from repro.eval.experiments import fig6_trajectory_experiment
from repro.world.scenario import DifficultyLevel


@pytest.mark.benchmark(group="fig6")
def test_fig6_trajectories(benchmark, trained_policy, runner):
    comparison = benchmark.pedantic(
        fig6_trajectory_experiment,
        kwargs=dict(
            policy=trained_policy, seed=3, difficulty=DifficultyLevel.NORMAL, runner=runner
        ),
        rounds=1,
        iterations=1,
    )
    icoil, il = comparison.icoil_result, comparison.il_result
    print()
    print(f"iCOIL: {icoil.status.value:>12}  time={icoil.parking_time:6.1f}s  "
          f"co_fraction={icoil.co_mode_fraction:.2f}")
    print(f"IL   : {il.status.value:>12}  time={il.parking_time:6.1f}s")

    assert comparison.icoil_trace.positions.shape[1] == 2
    # iCOIL must do at least as well as IL (success dominates failure).
    assert int(icoil.success) >= int(il.success)
    # The iCOIL trajectory covers a substantial distance towards the goal.
    travelled = np.linalg.norm(
        np.diff(comparison.icoil_trace.positions, axis=0), axis=1
    ).sum()
    assert travelled > 5.0
    # iCOIL never collides in this scenario.
    assert icoil.status.value != "collided"
