"""Render the ``BENCH_*.json`` trajectory files as markdown tables.

Every benchmark run appends one JSON object per line to
``BENCH_planner.json`` / ``BENCH_throughput.json`` at the repository root,
so the files accumulate a per-revision trajectory.  This script turns them
into a human-readable markdown report: one table per event type with rows
grouped by the recording revision's git SHA (appenders stamp it via
:mod:`benchmarks.bench_io`; legacy rows without one group under ``-``),
plus a trend line for the headline metrics (hybrid A* median speedup,
batch throughput, dynamic success rates) computed over the last row of
each revision group — repeated runs at one revision no longer masquerade
as a trend.

Usage::

    python benchmarks/report_trajectory.py                # repo-root files
    python benchmarks/report_trajectory.py --planner p.json --out REPORT.md

Exits non-zero only on unreadable input; missing files simply produce an
empty section, so the report runs on fresh clones too.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterable, List, Optional

REPO_ROOT = Path(__file__).resolve().parents[1]

# Columns promoted to the front of their table when present.
_LEADING_COLUMNS = ("sha", "scenario", "method", "backend")

# SHA value used for rows recorded before provenance stamping existed.
_NO_SHA = "-"


def load_lines(path: Path) -> List[dict]:
    """Parse one JSON object per non-empty line; raise on malformed lines."""
    if not path.exists():
        return []
    entries = []
    for line_number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}:{line_number}: malformed JSON line ({error})") from error
    return entries


def group_by_event(entries: Iterable[dict]) -> "OrderedDict[str, List[dict]]":
    """Rows per event type, ordered by (SHA first-appearance, append order).

    Interleaved appends from different benchmarks and repeated CI runs are
    regrouped so one revision's rows sit together; the SHA itself becomes a
    leading table column.
    """
    groups: "OrderedDict[str, OrderedDict[str, List[dict]]]" = OrderedDict()
    for entry in entries:
        event = str(entry.get("event", "unknown"))
        sha = str(entry.get("sha", _NO_SHA) or _NO_SHA)
        groups.setdefault(event, OrderedDict()).setdefault(sha, []).append(
            {**entry, "sha": sha}
        )
    return OrderedDict(
        (event, [row for rows in by_sha.values() for row in rows])
        for event, by_sha in groups.items()
    )


def _per_sha_single(rows: List[dict], key: str) -> Optional[List[dict]]:
    """One key-bearing row per SHA group, or ``None`` when that's ambiguous.

    Repeat runs at one revision collapse to the latest row, but a revision
    that recorded the key for *several distinct series* (e.g. one
    ``dynamic_bench`` row per scenario) has no single per-revision value —
    comparing an arbitrary member across revisions would dress different
    scenarios up as one metric's trajectory, so such events get no trend
    (their summary events carry it instead).  Rows without provenance
    (recorded before SHA stamping) pass through one-by-one — per-row
    ordering is all the history they have.
    """
    groups: "OrderedDict[str, OrderedDict[tuple, dict]]" = OrderedDict()
    unstamped = 0
    for row in rows:
        if not isinstance(row.get(key), (int, float)):
            continue
        sha = str(row.get("sha", _NO_SHA))
        if sha == _NO_SHA:
            unstamped += 1
            sha = f"{_NO_SHA}#{unstamped}"
        series = (row.get("scenario"), row.get("method"), row.get("backend"))
        groups.setdefault(sha, OrderedDict())[series] = row
    if any(len(series_map) > 1 for series_map in groups.values()):
        return None
    return [next(iter(series_map.values())) for series_map in groups.values()]


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".")
    if value is None:
        return ""
    return str(value)


def markdown_table(rows: List[dict]) -> List[str]:
    """One markdown table over the union of the rows' keys (event dropped)."""
    columns: List[str] = []
    for leading in _LEADING_COLUMNS:
        if any(leading in row for row in rows):
            columns.append(leading)
    for row in rows:
        for key in row:
            if key != "event" and key not in columns:
                columns.append(key)
    lines = [
        "| " + " | ".join(columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_format_value(row.get(column)) for column in columns) + " |"
        )
    return lines


def _trend(rows: List[dict], key: str) -> Optional[str]:
    per_revision = _per_sha_single(rows, key)
    if per_revision is None:
        return None
    values = [row[key] for row in per_revision]
    if not values:
        return None
    newest = _format_value(values[-1])
    if len(values) == 1:
        return f"latest {key}: {newest}"
    return f"{key} trajectory: {' -> '.join(_format_value(v) for v in values)}"


def render_report(planner_entries: List[dict], throughput_entries: List[dict]) -> str:
    sections: List[str] = ["# Benchmark trajectory", ""]
    named = (
        ("BENCH_planner.json", planner_entries),
        ("BENCH_throughput.json", throughput_entries),
    )
    for title, entries in named:
        sections.append(f"## {title}")
        sections.append("")
        if not entries:
            sections.append("_no entries_")
            sections.append("")
            continue
        for event, rows in group_by_event(entries).items():
            sections.append(f"### `{event}` ({len(rows)} entries)")
            sections.append("")
            sections.extend(markdown_table(rows))
            sections.append("")
            for key in ("median_speedup", "episodes_per_sec", "aware_parked"):
                trend = _trend(rows, key)
                if trend is not None:
                    sections.append(f"_{trend}_")
                    sections.append("")
    return "\n".join(sections).rstrip() + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--planner", type=Path, default=REPO_ROOT / "BENCH_planner.json",
        help="planner trajectory file (JSON lines)",
    )
    parser.add_argument(
        "--throughput", type=Path, default=REPO_ROOT / "BENCH_throughput.json",
        help="throughput trajectory file (JSON lines)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the markdown report here instead of stdout",
    )
    args = parser.parse_args(argv)
    try:
        report = render_report(load_lines(args.planner), load_lines(args.throughput))
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.out is not None:
        args.out.write_text(report, encoding="utf-8")
    else:
        print(report, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
