"""Render the ``BENCH_*.json`` trajectory files as markdown tables.

Every benchmark run appends one JSON object per line to
``BENCH_planner.json`` / ``BENCH_throughput.json`` at the repository root,
so the files accumulate a per-revision trajectory.  This script turns them
into a human-readable markdown report: one table per event type with rows
grouped by the recording revision's git SHA (appenders stamp it via
:mod:`benchmarks.bench_io`; legacy rows without one group under ``-``),
plus a trend line for the headline metrics (hybrid A* median speedup,
batch throughput, dynamic success rates) computed over the last row of
each revision group — repeated runs at one revision no longer masquerade
as a trend.

With ``--svg-dir`` the script additionally renders dependency-free SVG
trend plots: one file per ``(bench file, event, metric)``, one polyline per
series (scenario/method/backend combination), one point per revision group.

Usage::

    python benchmarks/report_trajectory.py                # repo-root files
    python benchmarks/report_trajectory.py --planner p.json --out REPORT.md
    python benchmarks/report_trajectory.py --svg-dir artifacts/trends

Exits non-zero only on unreadable input; missing files simply produce an
empty section, so the report runs on fresh clones too.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import OrderedDict
from pathlib import Path
from typing import Iterable, List, Optional

REPO_ROOT = Path(__file__).resolve().parents[1]

if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.determinism import check_hash_seed  # noqa: E402

# Columns promoted to the front of their table when present.
_LEADING_COLUMNS = (
    "sha",
    "scenario",
    "method",
    "backend",
    "constraints",
    "jacobian_mode",
    "arm",
    "query",
)

# Hash-valued columns: truncated for display (the full values live in the
# JSON lines), and always surfaced per revision so bitwise behaviour changes
# are visible next to the throughput numbers they may explain.
_DIGEST_COLUMNS = frozenset({"trace_digest"})
_DIGEST_DISPLAY_CHARS = 12

# SHA value used for rows recorded before provenance stamping existed.
_NO_SHA = "-"


def load_lines(path: Path) -> List[dict]:
    """Parse one JSON object per non-empty line; raise on malformed lines."""
    if not path.exists():
        return []
    entries = []
    for line_number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}:{line_number}: malformed JSON line ({error})") from error
    return entries


def group_by_event(entries: Iterable[dict]) -> "OrderedDict[str, List[dict]]":
    """Rows per event type, ordered by (SHA first-appearance, append order).

    Interleaved appends from different benchmarks and repeated CI runs are
    regrouped so one revision's rows sit together; the SHA itself becomes a
    leading table column.
    """
    groups: "OrderedDict[str, OrderedDict[str, List[dict]]]" = OrderedDict()
    for entry in entries:
        event = str(entry.get("event", "unknown"))
        sha = str(entry.get("sha", _NO_SHA) or _NO_SHA)
        groups.setdefault(event, OrderedDict()).setdefault(sha, []).append(
            {**entry, "sha": sha}
        )
    return OrderedDict(
        (event, [row for rows in by_sha.values() for row in rows])
        for event, by_sha in groups.items()
    )


def _per_sha_single(rows: List[dict], key: str) -> Optional[List[dict]]:
    """One key-bearing row per SHA group, or ``None`` when that's ambiguous.

    Repeat runs at one revision collapse to the latest row, but a revision
    that recorded the key for *several distinct series* (e.g. one
    ``dynamic_bench`` row per scenario) has no single per-revision value —
    comparing an arbitrary member across revisions would dress different
    scenarios up as one metric's trajectory, so such events get no trend
    (their summary events carry it instead).  Rows without provenance
    (recorded before SHA stamping) pass through one-by-one — per-row
    ordering is all the history they have.
    """
    groups: "OrderedDict[str, OrderedDict[tuple, dict]]" = OrderedDict()
    unstamped = 0
    for row in rows:
        if not isinstance(row.get(key), (int, float)):
            continue
        sha = str(row.get("sha", _NO_SHA))
        if sha == _NO_SHA:
            unstamped += 1
            sha = f"{_NO_SHA}#{unstamped}"
        series = tuple(
            row.get(k)
            for k in ("scenario", "method", "backend", "constraints", "jacobian_mode")
        )
        groups.setdefault(sha, OrderedDict())[series] = row
    if any(len(series_map) > 1 for series_map in groups.values()):
        return None
    return [next(iter(series_map.values())) for series_map in groups.values()]


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".")
    if value is None:
        return ""
    return str(value)


def _display_value(column: str, value) -> str:
    text = _format_value(value)
    if column in _DIGEST_COLUMNS and len(text) > _DIGEST_DISPLAY_CHARS:
        return text[:_DIGEST_DISPLAY_CHARS] + "…"
    return text


def markdown_table(rows: List[dict]) -> List[str]:
    """One markdown table over the union of the rows' keys (event dropped)."""
    columns: List[str] = []
    for leading in _LEADING_COLUMNS:
        if any(leading in row for row in rows):
            columns.append(leading)
    for row in rows:
        for key in row:
            if key != "event" and key not in columns:
                columns.append(key)
    lines = [
        "| " + " | ".join(columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append(
            "| "
            + " | ".join(_display_value(column, row.get(column)) for column in columns)
            + " |"
        )
    return lines


def _trend(rows: List[dict], key: str) -> Optional[str]:
    per_revision = _per_sha_single(rows, key)
    if per_revision is None:
        return None
    values = [row[key] for row in per_revision]
    if not values:
        return None
    newest = _format_value(values[-1])
    if len(values) == 1:
        return f"latest {key}: {newest}"
    return f"{key} trajectory: {' -> '.join(_format_value(v) for v in values)}"


# ----------------------------------------------------------------------
# SVG trend plots
# ----------------------------------------------------------------------

# Numeric columns that parameterize a run rather than measure it.
_NON_METRIC_KEYS = frozenset({"episodes", "workers", "seed", "seeds", "repeats"})

_SVG_PALETTE = ("#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b")


def _series_label(row: dict) -> str:
    parts = [
        str(row[k])
        for k in ("scenario", "method", "backend", "constraints", "jacobian_mode")
        if row.get(k)
    ]
    return "/".join(parts) if parts else "all"


def _series_history(rows: List[dict], key: str) -> "OrderedDict[str, List[tuple]]":
    """Per-series ``[(sha, value), ...]`` trajectories for one metric.

    Mirrors :func:`_per_sha_single`'s grouping — repeat runs at one revision
    collapse to the latest row — but keeps every series instead of bailing
    out on multi-series events: each series becomes its own polyline.
    """
    history: "OrderedDict[str, OrderedDict[str, float]]" = OrderedDict()
    unstamped = 0
    for row in rows:
        value = row.get(key)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        sha = str(row.get("sha", _NO_SHA))
        if sha == _NO_SHA:
            unstamped += 1
            sha = f"{_NO_SHA}#{unstamped}"
        history.setdefault(_series_label(row), OrderedDict())[sha] = float(value)
    return OrderedDict(
        (label, list(by_sha.items())) for label, by_sha in history.items()
    )


def _svg_escape(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def render_trend_svg(title: str, series: "OrderedDict[str, List[tuple]]") -> str:
    """Hand-written SVG line chart: one polyline per series, x = revision."""
    width, height = 720, 280
    left, right, top, bottom = 60, 16, 30, 60
    plot_w, plot_h = width - left - right, height - top - bottom

    shas: List[str] = []
    for points in series.values():
        for sha, _ in points:
            if sha not in shas:
                shas.append(sha)
    values = [value for points in series.values() for _, value in points]
    vmin, vmax = min(values), max(values)
    if vmax == vmin:
        vmin, vmax = vmin - 1.0, vmax + 1.0
    span = vmax - vmin
    vmin -= 0.05 * span
    vmax += 0.05 * span

    def x_at(sha: str) -> float:
        if len(shas) == 1:
            return left + plot_w / 2
        return left + plot_w * shas.index(sha) / (len(shas) - 1)

    def y_at(value: float) -> float:
        return top + plot_h * (1.0 - (value - vmin) / (vmax - vmin))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" font-family="monospace" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{left}" y="18" font-size="13">{_svg_escape(title)}</text>',
    ]
    for tick in range(5):
        value = vmin + (vmax - vmin) * tick / 4
        y = y_at(value)
        parts.append(
            f'<line x1="{left}" y1="{y:.1f}" x2="{width - right}" y2="{y:.1f}" '
            'stroke="#ddd" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{left - 6}" y="{y + 4:.1f}" text-anchor="end">'
            f"{_svg_escape(_format_value(round(value, 3)))}</text>"
        )
    for sha in shas:
        x = x_at(sha)
        label = sha.split("#")[0]
        parts.append(
            f'<text x="{x:.1f}" y="{height - bottom + 16}" text-anchor="middle">'
            f"{_svg_escape(label)}</text>"
        )
    for index, (label, points) in enumerate(series.items()):
        color = _SVG_PALETTE[index % len(_SVG_PALETTE)]
        coords = " ".join(f"{x_at(sha):.1f},{y_at(value):.1f}" for sha, value in points)
        parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" stroke-width="2"/>'
        )
        for sha, value in points:
            parts.append(
                f'<circle cx="{x_at(sha):.1f}" cy="{y_at(value):.1f}" r="3" '
                f'fill="{color}"/>'
            )
        parts.append(
            f'<text x="{left}" y="{height - bottom + 32 + 13 * index}" fill="{color}">'
            f"{_svg_escape(label)}</text>"
        )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def _slug(text: str) -> str:
    return "".join(ch if ch.isalnum() or ch in "-_" else "-" for ch in text)


def write_trend_svgs(
    named_entries: Iterable[tuple], out_dir: Path
) -> List[Path]:
    """One SVG per ``(bench file, event, metric)`` with SHA-grouped points."""
    out_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for name, entries in named_entries:
        stem = Path(name).stem
        for event, rows in group_by_event(entries).items():
            metrics = []
            for row in rows:
                for key, value in row.items():
                    if key in _NON_METRIC_KEYS or key in metrics:
                        continue
                    if isinstance(value, bool) or not isinstance(value, (int, float)):
                        continue
                    metrics.append(key)
            for metric in metrics:
                series = _series_history(rows, metric)
                if not series:
                    continue
                path = out_dir / f"{_slug(stem)}__{_slug(event)}__{_slug(metric)}.svg"
                path.write_text(
                    render_trend_svg(f"{event}: {metric}", series), encoding="utf-8"
                )
                written.append(path)
    return written


def render_report(planner_entries: List[dict], throughput_entries: List[dict]) -> str:
    sections: List[str] = ["# Benchmark trajectory", ""]
    named = (
        ("BENCH_planner.json", planner_entries),
        ("BENCH_throughput.json", throughput_entries),
    )
    for title, entries in named:
        sections.append(f"## {title}")
        sections.append("")
        if not entries:
            sections.append("_no entries_")
            sections.append("")
            continue
        for event, rows in group_by_event(entries).items():
            sections.append(f"### `{event}` ({len(rows)} entries)")
            sections.append("")
            sections.extend(markdown_table(rows))
            sections.append("")
            for key in (
                "median_speedup",
                "episodes_per_sec",
                "aware_parked",
                "process_eps",
                "solve_speedup",
                "mean_solve_ms",
                "median_solve_speedup",
                "batch_speedup",
                "fleet_eps",
                "speedup_vs_sequential",
                "solves_per_tick",
                "plan_cache_hit_rate",
                "query_us",
                "coordinated_eps",
                "deadlock_rate",
            ):
                trend = _trend(rows, key)
                if trend is not None:
                    sections.append(f"_{trend}_")
                    sections.append("")
    return "\n".join(sections).rstrip() + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    check_hash_seed()
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--planner", type=Path, default=REPO_ROOT / "BENCH_planner.json",
        help="planner trajectory file (JSON lines)",
    )
    parser.add_argument(
        "--throughput", type=Path, default=REPO_ROOT / "BENCH_throughput.json",
        help="throughput trajectory file (JSON lines)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the markdown report here instead of stdout",
    )
    parser.add_argument(
        "--svg-dir", type=Path, default=None,
        help="also render SVG trend plots (one per event/metric) into this directory",
    )
    args = parser.parse_args(argv)
    try:
        planner_entries = load_lines(args.planner)
        throughput_entries = load_lines(args.throughput)
        report = render_report(planner_entries, throughput_entries)
        if args.svg_dir is not None:
            written = write_trend_svgs(
                (
                    (args.planner.name, planner_entries),
                    (args.throughput.name, throughput_entries),
                ),
                args.svg_dir,
            )
            print(f"wrote {len(written)} trend SVGs to {args.svg_dir}", file=sys.stderr)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.out is not None:
        args.out.write_text(report, encoding="utf-8")
    else:
        print(report, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
