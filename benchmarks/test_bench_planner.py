"""Benchmark: hybrid A* across every registry preset, ESDF vs SAT-only.

For each of the 8 registered scenario presets the same planning problem
(REMOTE spawn to the expert's staging pose) is solved twice — once by the
pre-refactor SAT-only planner and once by the ESDF-accelerated planner
sharing the episode's :class:`~repro.spatial.SpatialIndex` — and the
speedup is recorded.  A second pass measures `BatchExecutor` throughput on
both backends.  Every run appends one JSON line per metric to
``BENCH_planner.json`` / ``BENCH_throughput.json`` at the repository root,
so the bench trajectory accumulates across revisions.

Thresholds (median planner speedup >= 3x, backend result identity) are
asserted unless ``ICOIL_BENCH_SMOKE=1`` — the CI smoke job sets it so the
benchmarks stay *executed* without gating merges on wall-clock noise.
"""

from __future__ import annotations

import os
import statistics
import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_io import append_record  # noqa: E402

from repro.api import BatchExecutor, BatchSpec
from repro.il.expert import ExpertDriver
from repro.planning.hybrid_astar import HybridAStarPlanner
from repro.spatial import SpatialIndex
from repro.vehicle.params import VehicleParams
from repro.world import ScenarioConfig, SpawnMode, build_scenario, default_scenario_registry

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PLANNER = REPO_ROOT / "BENCH_planner.json"
BENCH_THROUGHPUT = REPO_ROOT / "BENCH_throughput.json"
SMOKE = os.environ.get("ICOIL_BENCH_SMOKE") == "1"
PRESETS = default_scenario_registry().names()
REPEATS = 3


# SHA-stamped appends shared with the other benchmarks.
_append_line = append_record


def _time_plan(planner, start, staging, static, lot, index=None) -> tuple:
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        begin = time.perf_counter()
        result = planner.plan(start, staging, static, lot, spatial_index=index)
        best = min(best, time.perf_counter() - begin)
    return result, best


def test_bench_hybrid_astar_presets():
    """Median >= 3x speedup over the SAT-only planner across all presets."""
    params = VehicleParams()
    speedups = []
    for name in PRESETS:
        scenario = build_scenario(
            ScenarioConfig(scenario_name=name, spawn_mode=SpawnMode.REMOTE, seed=1)
        )
        static = scenario.static_obstacles
        expert = ExpertDriver(scenario.lot, scenario.obstacles, params)
        staging, _ = expert.final_maneuver(static)

        sat_planner = HybridAStarPlanner(params, use_spatial=False)
        sat_result, sat_time = _time_plan(
            sat_planner, scenario.start_pose, staging, static, scenario.lot
        )

        # The index is per-episode shared state (expert ladder, replans, HSA
        # and CO all reuse it), so it is built outside the hot path — but its
        # one-off cost is recorded too.
        build_begin = time.perf_counter()
        index = SpatialIndex(scenario.lot, static, params)
        index_build_time = time.perf_counter() - build_begin
        esdf_planner = HybridAStarPlanner(params, use_spatial=True)
        esdf_result, esdf_time = _time_plan(
            esdf_planner, scenario.start_pose, staging, static, scenario.lot, index=index
        )

        assert esdf_result.success == sat_result.success, f"{name}: success diverged"
        speedup = sat_time / esdf_time if esdf_time > 0 else float("inf")
        speedups.append(speedup)
        _append_line(
            BENCH_PLANNER,
            {
                "event": "planner_bench",
                "scenario": name,
                "sat_ms": round(sat_time * 1e3, 3),
                "esdf_ms": round(esdf_time * 1e3, 3),
                "index_build_ms": round(index_build_time * 1e3, 3),
                "speedup": round(speedup, 2),
                "expanded_sat": sat_result.expanded_nodes,
                "expanded_esdf": esdf_result.expanded_nodes,
                "success": bool(esdf_result.success),
            },
        )

    median_speedup = statistics.median(speedups)
    _append_line(
        BENCH_PLANNER,
        {"event": "planner_bench_summary", "median_speedup": round(median_speedup, 2)},
    )
    print(f"\nhybrid A* median speedup across {len(PRESETS)} presets: {median_speedup:.2f}x")
    if not SMOKE:
        assert median_speedup >= 3.0, f"median speedup regressed to {median_speedup:.2f}x"


def test_bench_batch_throughput_backends():
    """BatchExecutor episodes/sec on both backends, appended to the trajectory.

    On a multi-core machine the process backend should beat the thread
    backend roughly linearly in cores; on a single core the assertion is
    skipped (there is nothing to scale over) but identity still holds.
    """
    spec = BatchSpec(
        method="expert",
        seeds=tuple(range(32)),
        spawn_mode=SpawnMode.CLOSE,
        scenario_name="perpendicular-easy",
        time_limit=40.0,
    )
    outcomes = {}
    for backend in ("thread", "process"):
        executor = BatchExecutor(
            backend=backend,
            max_workers=4,
            summary_stream=None,
            bench_path=BENCH_THROUGHPUT,
        )
        outcomes[backend] = executor.run(spec)
    thread_outcome, process_outcome = outcomes["thread"], outcomes["process"]
    assert process_outcome.results == thread_outcome.results, "backends diverged"
    ratio = (
        process_outcome.summary.episodes_per_second
        / thread_outcome.summary.episodes_per_second
    )
    print(f"\nprocess/thread throughput ratio on {os.cpu_count()} cores: {ratio:.2f}x")
    if not SMOKE and (os.cpu_count() or 1) >= 4:
        assert ratio >= 2.0, f"process backend only reached {ratio:.2f}x thread throughput"


if __name__ == "__main__":
    pytest.main([__file__, "-v", "-s"])
