"""Fleet-serving throughput: warm worker pool + caches vs the batch baseline.

The seed revision's throughput records (the first ``batch_summary`` lines in
``BENCH_throughput.json``) measured the plain :class:`BatchExecutor` at
~2.1 episodes/s with 4 thread workers — every request recomputed from
scratch, a per-call process pool slower still.  This bench measures the
``repro.serve`` stack against that regime on fleet-style traffic: the
8-preset sweep requested over and over, with "preview" variants (capped
step counts) mixed in the way a monitoring client would issue them.

Two arms run the same serving trace at equal worker count:

* **thread** — the status-quo path: ``backend="thread"``, no result reuse,
  one full pass over the deduplicated trace (every repetition of the trace
  costs the same again, so the pass's rate is the arm's serving rate).
* **process (warm)** — the serving stack: persistent spawn workers with
  shared-memory spatial caches plus the episode-result memo
  (``reuse_results=True``).  The pool is spun up before timing starts (the
  one-off spawn cost is recorded separately as ``warmup_s``); the measured
  session then pays every unique episode's compute cold and serves the
  repetitions from the memo.

Both arms' records carry the ``unique_episodes`` / ``cache_hit_rate`` /
``spatial_hit_rate`` split so the speedup stays attributable to caching
rather than hidden work-skipping; results are asserted bitwise identical
across the arms before any rate is recorded.

Unless ``ICOIL_BENCH_SMOKE=1``:

* warm-process serving throughput must reach ``>= 21`` episodes/s
  (>= 10x the seed's ~2.1 eps/s thread baseline) at 4 workers;
* the warm-process arm must be strictly faster than the thread arm;
* the warm arm's result-cache and spatial-cache hit counts must be > 0.

Smoke mode shrinks the sweep (2 presets, 2 workers) and only asserts
``process >= thread`` and a non-zero result-cache hit rate.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_io import append_record  # noqa: E402

from repro.api import BatchExecutor, EpisodeSpec
from repro.world.scenario import DifficultyLevel, ScenarioConfig, SpawnMode

SMOKE = os.environ.get("ICOIL_BENCH_SMOKE") == "1"

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_THROUGHPUT = REPO_ROOT / "BENCH_throughput.json"

# The seed revision's recorded thread-backend rate (see the first
# batch_summary lines of BENCH_throughput.json); the acceptance bar is 10x.
BASELINE_EPS = 2.1
TARGET_EPS = 21.0

PRESETS = (
    "legacy",
    "perpendicular-easy",
    "perpendicular-hard",
    "parallel-easy",
    "parallel-hard",
    "angled-easy",
    "angled-cluttered",
    "dead-end-normal",
)

SWEEP_PRESETS = PRESETS[:2] if SMOKE else PRESETS
SEEDS = (0,) if SMOKE else (0, 1)
WORKERS = 2 if SMOKE else 4
# Fleet repetition factor: how many times each unique request recurs in the
# measured serving session (monitoring dashboards, retries, A/B replays).
REPEAT = 4 if SMOKE else 12


def _sweep_specs():
    """Unique requests: one full episode + one preview probe per scenario."""
    specs = []
    for preset in SWEEP_PRESETS:
        for seed in SEEDS:
            base = EpisodeSpec(
                method="expert",
                scenario=ScenarioConfig(
                    scenario_name=preset, spawn_mode=SpawnMode.CLOSE, seed=seed
                ),
                time_limit=70.0,
            )
            specs.append(base)
            specs.append(replace(base, max_steps=40))
    return specs


def _variant_specs(uniques):
    """Late-arriving variants: new specs over already-cached scenarios.

    Result-cache misses but spatial-cache hits — the raster structures were
    published to shared memory while the base sweep computed.
    """
    return [replace(spec, max_steps=60) for spec in uniques if spec.max_steps is None]


def _serving_trace(uniques, repeat):
    """Deterministic fleet trace: ``repeat - 1`` rotated replays of the sweep."""
    trace = []
    for round_index in range(1, repeat):
        rotation = round_index % len(uniques)
        trace.extend(uniques[rotation:] + uniques[:rotation])
    return trace


def test_bench_serving_throughput():
    uniques = _sweep_specs()
    variants = _variant_specs(uniques)
    replays = _serving_trace(uniques, REPEAT)

    # --- thread arm: the status-quo batch path over one deduplicated pass ---
    thread_specs = uniques + variants
    thread = BatchExecutor(backend="thread", max_workers=WORKERS, summary_stream=None)
    thread_outcome = thread.run_specs(thread_specs)
    thread_eps = thread_outcome.summary.episodes_per_second
    append_record(
        BENCH_THROUGHPUT,
        {
            "event": "serving_bench",
            "backend": "thread",
            "workers": WORKERS,
            "episodes": len(thread_specs),
            "unique_episodes": len(thread_specs),
            "wall_time_s": round(thread_outcome.summary.wall_time_s, 4),
            "episodes_per_sec": round(thread_eps, 3),
            "cache_hit_rate": 0.0,
            "spatial_hit_rate": 0.0,
            "smoke": SMOKE,
        },
        results=thread_outcome.results,
    )

    # --- process arm: warm pool + shm spatial cache + result memo ---
    with BatchExecutor(
        backend="process",
        max_workers=WORKERS,
        reuse_results=True,
        summary_stream=None,
    ) as serving:
        # Spin the workers up outside the measured session.  The throwaway
        # specs use a scenario seed outside the sweep, so neither their
        # results nor their published rasters pre-answer measured requests.
        warm_start = time.perf_counter()
        warmup_scenario = replace(uniques[0].scenario, seed=9999)
        warmup_specs = [
            replace(uniques[0], scenario=warmup_scenario, max_steps=2 + index)
            for index in range(2 * WORKERS)
        ]
        serving.run_specs(warmup_specs)
        serving.result_cache.clear()
        warmup_s = time.perf_counter() - warm_start

        session_start = time.perf_counter()
        cold = serving.run_specs(uniques)
        warm = serving.run_specs(replays + variants)
        session_wall = time.perf_counter() - session_start

    episodes = cold.summary.num_episodes + warm.summary.num_episodes
    unique = cold.summary.num_unique_episodes + warm.summary.num_unique_episodes
    result_hits = cold.summary.result_cache_hits + warm.summary.result_cache_hits
    spatial_hits = cold.summary.spatial_cache_hits + warm.summary.spatial_cache_hits
    spatial_misses = (
        cold.summary.spatial_cache_misses + warm.summary.spatial_cache_misses
    )
    process_eps = episodes / session_wall
    cache_hit_rate = result_hits / episodes
    spatial_total = spatial_hits + spatial_misses
    spatial_hit_rate = spatial_hits / spatial_total if spatial_total else 0.0

    append_record(
        BENCH_THROUGHPUT,
        {
            "event": "serving_bench",
            "backend": "process",
            "workers": WORKERS,
            "episodes": episodes,
            "unique_episodes": unique,
            "wall_time_s": round(session_wall, 4),
            "episodes_per_sec": round(process_eps, 3),
            "cache_hit_rate": round(cache_hit_rate, 4),
            "spatial_hit_rate": round(spatial_hit_rate, 4),
            "warmup_s": round(warmup_s, 4),
            "smoke": SMOKE,
        },
        results=list(cold.results) + list(warm.results),
    )
    append_record(
        BENCH_THROUGHPUT,
        {
            "event": "serving_bench_summary",
            "workers": WORKERS,
            "thread_eps": round(thread_eps, 3),
            "process_eps": round(process_eps, 3),
            "speedup_vs_thread": round(process_eps / thread_eps, 2),
            "speedup_vs_seed_baseline": round(process_eps / BASELINE_EPS, 2),
            "cache_hit_rate": round(cache_hit_rate, 4),
            "smoke": SMOKE,
        },
    )
    print(
        f"\nserving bench ({WORKERS} workers): thread {thread_eps:.2f} eps/s, "
        f"warm process {process_eps:.2f} eps/s over {episodes} episodes "
        f"({unique} unique, hit rate {cache_hit_rate:.3f}, "
        f"spatial hit rate {spatial_hit_rate:.3f}, warmup {warmup_s:.2f}s)"
    )

    # Bitwise parity before any rate means anything: every episode the warm
    # arm served — computed cold, memo-replayed, or spatially cached — must
    # equal the thread arm's recomputed result for the same spec.
    reference = {
        spec.cache_key(): result
        for spec, result in zip(thread_specs, thread_outcome.results)
    }
    for batch, specs in ((cold, uniques), (warm, replays + variants)):
        for spec, result in zip(specs, batch.results):
            assert result == reference[spec.cache_key()]

    assert result_hits > 0 and cache_hit_rate > 0.0
    if not SMOKE:
        assert spatial_hits > 0, "warm workers never hit the shared spatial cache"
        assert process_eps > thread_eps, (
            f"warm serving ({process_eps:.2f} eps/s) must beat the thread "
            f"baseline ({thread_eps:.2f} eps/s)"
        )
        assert process_eps >= TARGET_EPS, (
            f"warm serving reached {process_eps:.2f} eps/s, "
            f"below the {TARGET_EPS} eps/s (10x baseline) target"
        )
    else:
        assert process_eps >= thread_eps, (
            f"smoke: warm serving ({process_eps:.2f} eps/s) fell below the "
            f"thread baseline ({thread_eps:.2f} eps/s)"
        )


# ---------------------------------------------------------------------------
# Fleet-step arm: lockstep batched CO solving vs per-episode sequential solves
# ---------------------------------------------------------------------------
# Where the warm-pool bench above measures *cache* leverage on repeated
# traffic, this arm measures *batching* leverage on cache-cold traffic: a
# fleet of unique CO episodes (distinct scenario seeds, so no spatial, plan
# or result reuse between them) solved either one session at a time on the
# warm pool (the pre-fleet serving path) or in lockstep ticks with one
# stacked Gauss-Newton solve per tick (``backend="fleet"``).  Both arms run
# the *same* specs with ``co_solver="batched"``, so the results are bitwise
# identical and the speedup is attributable purely to cross-session
# batching.  A replay pass over the fleet-process backend then shows the
# cross-episode plan cache absorbing the hybrid-A* setup cost.
FLEET_EPISODES = 8 if SMOKE else 64
FLEET_STEPS = 10 if SMOKE else 40
FLEET_WORKERS = 2
FLEET_TARGET_SPEEDUP = 2.0


def _fleet_specs():
    return [
        EpisodeSpec(
            method="co",
            scenario=ScenarioConfig(
                difficulty=DifficultyLevel.EASY, spawn_mode=SpawnMode.CLOSE, seed=seed
            ),
            co_solver="batched",
            max_steps=FLEET_STEPS,
        )
        for seed in range(FLEET_EPISODES)
    ]


def test_bench_fleet_step_throughput():
    specs = _fleet_specs()
    warmup_spec = EpisodeSpec(
        method="co",
        scenario=ScenarioConfig(
            difficulty=DifficultyLevel.EASY, spawn_mode=SpawnMode.CLOSE, seed=9999
        ),
        co_solver="batched",
        max_steps=4,
    )

    # --- sequential arm: the warm pool solving one session at a time ---
    with BatchExecutor(
        backend="process", max_workers=FLEET_WORKERS, summary_stream=None
    ) as sequential:
        sequential.run_specs([warmup_spec] * FLEET_WORKERS)  # spin-up, untimed
        start = time.perf_counter()
        sequential_outcome = sequential.run_specs(specs)
        sequential_wall = time.perf_counter() - start
    sequential_eps = len(specs) / sequential_wall
    append_record(
        BENCH_THROUGHPUT,
        {
            "event": "fleet_bench",
            "backend": "process",
            "workers": FLEET_WORKERS,
            "episodes": len(specs),
            "wall_time_s": round(sequential_wall, 4),
            "episodes_per_sec": round(sequential_eps, 3),
            "solves_per_tick": 1.0,
            "smoke": SMOKE,
        },
        results=sequential_outcome.results,
    )

    # --- fleet arm: one lockstep cohort, one stacked solve per tick ---
    fleet = BatchExecutor(backend="fleet", summary_stream=None)
    start = time.perf_counter()
    fleet_outcome = fleet.run_specs(specs)
    fleet_wall = time.perf_counter() - start
    fleet_eps = len(specs) / fleet_wall
    fleet_stats = dict(fleet.last_fleet_stats)
    append_record(
        BENCH_THROUGHPUT,
        {
            "event": "fleet_bench",
            "backend": "fleet",
            "workers": 1,
            "episodes": len(specs),
            "wall_time_s": round(fleet_wall, 4),
            "episodes_per_sec": round(fleet_eps, 3),
            "solves_per_tick": fleet_stats.get("solves_per_tick", 0.0),
            "problems_per_solve": fleet_stats.get("problems_per_solve", 0.0),
            "ragged_ticks": fleet_stats.get("ragged_ticks", 0),
            "smoke": SMOKE,
        },
        results=fleet_outcome.results,
    )
    # The two arms ran identical specs, so their batch digests must agree —
    # the bitwise-parity contract, checked on real benchmark traffic.
    assert [r.trace_hash for r in fleet_outcome.results] == [
        r.trace_hash for r in sequential_outcome.results
    ], "fleet and sequential arms diverged bitwise on identical specs"

    # --- plan-cache pass: fleet-process cold then replayed ---
    # The first pass publishes every scenario's hybrid-A* plan to shared
    # memory as it searches; the replay answers the same queries from the
    # cache, so its hit rate is the plan cache working end to end.
    with BatchExecutor(
        backend="fleet-process", max_workers=FLEET_WORKERS, summary_stream=None
    ) as serving:
        serving.run_specs([warmup_spec] * FLEET_WORKERS)
        cold = serving.run_specs(specs)
        cold_plan_rate = cold.summary.plan_cache_hit_rate or 0.0
        start = time.perf_counter()
        replay = serving.run_specs(specs)
        replay_wall = time.perf_counter() - start
        replay_plan_rate = replay.summary.plan_cache_hit_rate or 0.0
    append_record(
        BENCH_THROUGHPUT,
        {
            "event": "fleet_bench",
            "backend": "fleet-process",
            "workers": FLEET_WORKERS,
            "episodes": len(specs),
            "wall_time_s": round(replay_wall, 4),
            "episodes_per_sec": round(len(specs) / replay_wall, 3),
            "solves_per_tick": (replay.summary.solves_per_tick or 0.0),
            "plan_cache_hit_rate": round(replay_plan_rate, 4),
            "plan_cache_hit_rate_cold": round(cold_plan_rate, 4),
            "smoke": SMOKE,
        },
        results=replay.results,
    )
    # Plan-cache hits must not change behaviour: the replayed batch is
    # bitwise identical to the cold one and to the in-process fleet arm.
    assert [r.trace_hash for r in replay.results] == [
        r.trace_hash for r in cold.results
    ] == [r.trace_hash for r in fleet_outcome.results], (
        "fleet-process replay diverged bitwise from its cold run"
    )
    append_record(
        BENCH_THROUGHPUT,
        {
            "event": "fleet_bench_summary",
            "episodes": len(specs),
            "sequential_eps": round(sequential_eps, 3),
            "fleet_eps": round(fleet_eps, 3),
            "speedup_vs_sequential": round(fleet_eps / sequential_eps, 2),
            "solves_per_tick": fleet_stats.get("solves_per_tick", 0.0),
            "plan_cache_hit_rate": round(replay_plan_rate, 4),
            "smoke": SMOKE,
        },
    )
    print(
        f"\nfleet bench ({len(specs)} episodes): sequential warm pool "
        f"{sequential_eps:.2f} eps/s, fleet {fleet_eps:.2f} eps/s "
        f"({fleet_eps / sequential_eps:.2f}x, {fleet_stats.get('solves_per_tick', 0.0)} "
        f"solves/tick), replay plan-cache hit rate {replay_plan_rate:.3f}"
    )

    # Bitwise parity across every arm before any rate means anything.
    for arm in (fleet_outcome, cold, replay):
        assert arm.results == sequential_outcome.results
    for fleet_trace, sequential_trace in zip(fleet_outcome.traces, sequential_outcome.traces):
        assert (
            fleet_trace.positions.tobytes() == sequential_trace.positions.tobytes()
        ), "fleet-stepped trace diverged from the sequential solve"

    assert fleet_stats.get("solves_per_tick", 0.0) > 1.0, (
        "fleet arm never batched across sessions"
    )
    assert replay_plan_rate > 0.0, "plan-cache replay never hit"
    if not SMOKE:
        assert fleet_eps >= FLEET_TARGET_SPEEDUP * sequential_eps, (
            f"fleet stepping reached {fleet_eps:.2f} eps/s, below "
            f"{FLEET_TARGET_SPEEDUP}x the sequential warm pool "
            f"({sequential_eps:.2f} eps/s)"
        )


if __name__ == "__main__":
    import pytest

    pytest.main([__file__, "-v", "-s"])
