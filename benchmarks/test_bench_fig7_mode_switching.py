"""Fig. 7 — HSA uncertainty, mode switching and control commands over time.

The paper shows the scenario uncertainty fluctuating early in the episode and
dropping once the vehicle approaches the space, with the system switching
mode (and engaging reverse) for the final maneuver, smoothed by a 20-frame
guard time.  The reproduction checks the uncertainty trace is well-formed,
that mode changes respect the guard time, and that the reverse gear engages
during the episode.
"""

import numpy as np
import pytest

from repro.core.config import ICOILConfig
from repro.eval.experiments import fig7_mode_switching_experiment
from repro.eval.runner import EpisodeRunner
from repro.world.scenario import DifficultyLevel


@pytest.mark.benchmark(group="fig7")
def test_fig7_mode_switching(benchmark, trained_policy):
    config = ICOILConfig(guard_frames=20)
    runner = EpisodeRunner(il_policy=trained_policy, config=config, time_limit=70.0)
    trace = benchmark.pedantic(
        fig7_mode_switching_experiment,
        kwargs=dict(
            policy=trained_policy,
            seed=0,
            difficulty=DifficultyLevel.EASY,
            config=config,
            runner=runner,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(f"episode: {trace.result.status.value}, frames={len(trace.modes)}, "
          f"switches={trace.num_switches}")
    print(f"uncertainty: early={trace.early_uncertainty:.3f} late={trace.late_uncertainty:.3f}")
    print(f"co fraction: {trace.result.co_mode_fraction:.2f}, reverse frames={int(trace.reverse.sum())}")

    assert len(trace.modes) == trace.uncertainties.shape[0]
    assert np.all(trace.uncertainties >= 0.0) and np.all(trace.uncertainties <= 1.0)
    # The reverse gear engages for the final parking maneuver.
    assert trace.reverse.any()
    # Guard time: consecutive mode switches are at least guard_frames apart.
    switch_indices = [
        index for index in range(1, len(trace.modes)) if trace.modes[index] != trace.modes[index - 1]
    ]
    gaps = np.diff(switch_indices)
    assert np.all(gaps >= config.guard_frames) if gaps.size else True
