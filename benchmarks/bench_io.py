"""Shared helpers for the append-only ``BENCH_*.json`` trajectory files.

Every benchmark appends one JSON object per line; the files accumulate a
per-revision trajectory across CI runs.  Historically the records carried no
provenance, so ``BENCH_planner.json`` interleaved ``planner_bench`` and
``dynamic_bench`` events from arbitrary revisions and the report could only
order them by raw line position.  :func:`append_record` stamps every record
with the current git SHA (short form), letting
``benchmarks/report_trajectory.py`` group the trajectory by (event, SHA)
instead of line order.

Records of episode batches additionally carry a ``trace_digest`` — the
batch-level digest of the per-episode trace hashes (see
:func:`repro.api.trace.batch_trace_digest` and ``DETERMINISM.md``) — either
passed pre-computed in the payload or derived here from the ``results=``
keyword, so a revision whose numbers moved can be checked for *bitwise*
behaviour changes, not just throughput ones.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from typing import Optional, Sequence

from repro.api.trace import batch_trace_digest

REPO_ROOT = Path(__file__).resolve().parents[1]

_CACHED_SHA = None


def current_sha() -> str:
    """Short git SHA of the working tree, or ``"unknown"`` outside a repo.

    A dirty working tree is stamped ``<sha>-dirty`` (``git describe``'s
    convention): pre-commit bench runs must not masquerade as the HEAD
    commit, whose code did not produce them.
    """
    global _CACHED_SHA
    if _CACHED_SHA is None:
        try:
            sha = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                check=True,
                timeout=10,
            ).stdout.strip()
            dirty = subprocess.run(
                ["git", "status", "--porcelain"],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                check=True,
                timeout=10,
            ).stdout.strip()
            _CACHED_SHA = (f"{sha}-dirty" if dirty else sha) if sha else "unknown"
        except (OSError, subprocess.SubprocessError):
            _CACHED_SHA = "unknown"
    return _CACHED_SHA


def append_record(path: Path, payload: dict, results: Optional[Sequence] = None) -> None:
    """Append one SHA-stamped JSON record to a trajectory file.

    When ``results`` (a sequence of
    :class:`~repro.api.results.EpisodeResult`) is given, the record is also
    stamped with the batch's ``trace_digest``, unless the payload already
    carries one.
    """
    record = {**payload, "sha": current_sha()}
    if results is not None and "trace_digest" not in record:
        record["trace_digest"] = batch_trace_digest(
            result.trace_hash for result in results
        )
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, separators=(",", ":")) + "\n")
