"""Ablation — HSA switching threshold and guard time.

DESIGN.md calls out the threshold ``lambda`` (Eq. 1) and the 20-frame guard
time (§V-C) as the design choices that govern mode switching.  This ablation
sweeps the threshold at a fixed guard time and checks the expected monotone
behaviour: a very small threshold keeps the system in the CO mode almost
always, a very large threshold hands control to IL almost always.
"""

import pytest

from repro.eval.experiments import hsa_ablation_experiment


@pytest.mark.benchmark(group="ablation")
def test_hsa_threshold_ablation(benchmark, trained_policy):
    points = benchmark.pedantic(
        hsa_ablation_experiment,
        kwargs=dict(
            policy=trained_policy,
            thresholds=(0.002, 5.0),
            guard_frames=(20,),
            num_episodes=1,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    for point in points:
        print(
            f"lambda={point.switch_threshold:<5} guard={point.guard_frames:<3} "
            f"success={point.success_rate:.2f} time={point.mean_parking_time:6.1f}s "
            f"co_fraction={point.co_mode_fraction:.2f} switches={point.mean_switches:.1f}"
        )

    by_threshold = {point.switch_threshold: point for point in points}
    # A tiny threshold means the HSA score almost always exceeds it -> CO mode;
    # a huge threshold means it almost never does -> IL mode.
    assert by_threshold[0.002].co_mode_fraction > by_threshold[5.0].co_mode_fraction
