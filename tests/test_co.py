"""Tests for the constrained-optimization (MPC) module."""

import numpy as np
import pytest

from repro.co import (
    COController,
    CollisionConstraintSet,
    ControlBounds,
    GaussNewtonSolver,
    MPCProblem,
    ObstaclePrediction,
)
from repro.co.constraints import covering_circles, ego_covering_circles
from repro.geometry.se2 import SE2
from repro.geometry.shapes import OrientedBox
from repro.perception.detector import Detection
from repro.planning.waypoints import WaypointPath
from repro.vehicle.kinematics import AckermannModel
from repro.vehicle.state import VehicleState


def straight_reference(start_x=0.0, speed=1.0, dt=0.25, horizon=8):
    positions = np.array([[start_x + speed * dt * (h + 1), 0.0] for h in range(horizon)])
    headings = np.zeros(horizon)
    return positions, headings


class TestControlBounds:
    def test_from_vehicle(self, vehicle_params):
        bounds = ControlBounds.from_vehicle(vehicle_params)
        assert bounds.max_steer == vehicle_params.max_steer

    def test_clip(self, vehicle_params):
        bounds = ControlBounds.from_vehicle(vehicle_params)
        controls = np.array([[10.0, 2.0], [-10.0, -2.0]])
        clipped = bounds.clip(controls)
        assert clipped[0, 0] == vehicle_params.max_acceleration
        assert clipped[1, 1] == -vehicle_params.max_steer

    def test_lower_upper_shapes(self, vehicle_params):
        bounds = ControlBounds.from_vehicle(vehicle_params)
        assert bounds.lower(5).shape == (10,)
        assert np.all(bounds.lower(5) <= bounds.upper(5))


class TestCoveringCircles:
    def test_box_coverage(self):
        box = OrientedBox(0.0, 0.0, 4.2, 1.9, 0.0)
        offsets, radius = covering_circles(box)
        assert offsets.shape[0] == 3
        # Every corner must be inside at least one circle.
        for corner in box.vertices():
            local_corners = corner - box.center
            assert any(np.hypot(*(local_corners - offset)) <= radius + 1e-9 for offset in offsets)

    def test_ego_coverage(self, vehicle_params):
        offsets, radius = ego_covering_circles(vehicle_params, num_circles=3)
        assert offsets.shape == (3,)
        assert radius > vehicle_params.width / 2.0

    def test_invalid_circle_count(self, vehicle_params):
        with pytest.raises(ValueError):
            ego_covering_circles(vehicle_params, num_circles=0)


class TestObstaclePrediction:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ObstaclePrediction(circle_positions=np.zeros((4, 2)), circle_radius=1.0)

    def test_required_clearance(self):
        prediction = ObstaclePrediction(
            circle_positions=np.zeros((3, 1, 2)), circle_radius=1.0, safety_margin=0.2
        )
        assert prediction.required_clearance(1.5) == pytest.approx(2.7)


class TestConstraintSet:
    def test_from_obstacles_static(self, easy_scenario, vehicle_params):
        constraint_set = CollisionConstraintSet(vehicle_params)
        predictions = constraint_set.from_obstacles(easy_scenario.obstacles, 0.0, 0.1, 5)
        assert len(predictions) == len(easy_scenario.obstacles)
        for prediction in predictions:
            assert prediction.horizon == 5

    def test_from_detections_constant_velocity(self, vehicle_params):
        constraint_set = CollisionConstraintSet(vehicle_params)
        detection = Detection(
            box=OrientedBox(5.0, 0.0, 1.0, 0.8, 0.0),
            velocity=np.array([1.0, 0.0]),
            confidence=0.9,
            obstacle_id="walker",
        )
        predictions = constraint_set.from_detections([detection], dt=0.5, horizon=4)
        positions = predictions[0].circle_positions
        assert positions[3, 0, 0] > positions[0, 0, 0]

    def test_moving_obstacles_get_larger_margin(self, vehicle_params):
        constraint_set = CollisionConstraintSet(vehicle_params)
        static_detection = Detection(
            box=OrientedBox(5.0, 0.0, 1.0, 0.8, 0.0), velocity=np.zeros(2), confidence=0.9
        )
        moving_detection = Detection(
            box=OrientedBox(5.0, 0.0, 1.0, 0.8, 0.0), velocity=np.array([0.6, 0.0]), confidence=0.9
        )
        static_pred = constraint_set.from_detections([static_detection], 0.25, 4)[0]
        moving_pred = constraint_set.from_detections([moving_detection], 0.25, 4)[0]
        assert moving_pred.safety_margin > static_pred.safety_margin


class TestMPCProblem:
    def _problem(self, vehicle_params, with_obstacle=False):
        model = AckermannModel(vehicle_params, dt=0.25)
        positions, headings = straight_reference()
        predictions = []
        if with_obstacle:
            circles = np.tile(np.array([[3.0, 0.3]]), (8, 1, 1))
            predictions = [ObstaclePrediction(circles, circle_radius=0.5, safety_margin=0.1)]
        return MPCProblem(
            model=model,
            initial_state=VehicleState(velocity=1.0),
            reference_positions=positions,
            reference_headings=headings,
            obstacle_predictions=predictions,
        )

    def test_horizon_and_variables(self, vehicle_params):
        problem = self._problem(vehicle_params)
        assert problem.horizon == 8
        assert problem.num_variables == 16

    def test_zero_controls_objective_finite(self, vehicle_params):
        problem = self._problem(vehicle_params)
        assert np.isfinite(problem.objective(np.zeros((8, 2))))

    def test_residual_size_fixed(self, vehicle_params):
        problem = self._problem(vehicle_params, with_obstacle=True)
        a = problem.residuals(np.zeros((8, 2)))
        b = problem.residuals(np.ones((8, 2)) * 0.1)
        assert a.shape == b.shape

    def test_tracking_objective_prefers_moving(self, vehicle_params):
        model = AckermannModel(vehicle_params, dt=0.25)
        positions, headings = straight_reference(speed=1.0)
        problem = MPCProblem(
            model=model,
            initial_state=VehicleState(velocity=0.0),
            reference_positions=positions,
            reference_headings=headings,
        )
        stand_still = problem.objective(np.zeros((8, 2)))
        accelerate = problem.objective(np.tile([1.0, 0.0], (8, 1)))
        assert accelerate < stand_still

    def test_constraint_violation_detected(self, vehicle_params):
        problem = self._problem(vehicle_params, with_obstacle=True)
        # Driving straight at cruise speed passes right through the obstacle.
        controls = np.tile([0.5, 0.0], (8, 1))
        assert not problem.is_feasible(controls)
        assert problem.min_clearance(controls) < 0.0

    def test_heading_length_validation(self, vehicle_params):
        model = AckermannModel(vehicle_params, dt=0.25)
        positions, _ = straight_reference()
        with pytest.raises(ValueError):
            MPCProblem(
                model=model,
                initial_state=VehicleState(),
                reference_positions=positions,
                reference_headings=np.zeros(3),
            )

    def test_clearance_margins_report_per_source(self, vehicle_params):
        controls = np.tile([0.5, 0.0], (8, 1))
        unconstrained = self._problem(vehicle_params)
        assert unconstrained.clearance_margins(controls) == {}
        assert unconstrained.min_clearance(controls) == float("inf")

        with_circles = self._problem(vehicle_params, with_obstacle=True)
        margins = with_circles.clearance_margins(controls)
        assert set(margins) == {"circles"}
        # The single configured source IS the overall minimum — no other
        # source can silently shadow it.
        assert with_circles.min_clearance(controls) == margins["circles"]
        assert margins["circles"] < 0.0


class TestGaussNewtonSolver:
    def test_tracks_straight_reference(self, vehicle_params):
        model = AckermannModel(vehicle_params, dt=0.25)
        positions, headings = straight_reference(speed=1.2)
        problem = MPCProblem(
            model=model,
            initial_state=VehicleState(velocity=0.5),
            reference_positions=positions,
            reference_headings=headings,
        )
        solver = GaussNewtonSolver(max_iterations=10)
        result = solver.solve(problem)
        assert result.objective < problem.objective(np.zeros((8, 2)))
        # The optimised plan should accelerate forwards.
        assert result.first_control[0] > 0.0

    def test_avoids_obstacle_on_path(self, vehicle_params):
        model = AckermannModel(vehicle_params, dt=0.25)
        positions, headings = straight_reference(speed=1.2)
        circles = np.tile(np.array([[2.5, 0.0]]), (8, 1, 1))
        problem = MPCProblem(
            model=model,
            initial_state=VehicleState(velocity=1.0),
            reference_positions=positions,
            reference_headings=headings,
            obstacle_predictions=[ObstaclePrediction(circles, circle_radius=0.5, safety_margin=0.1)],
        )
        solver = GaussNewtonSolver(max_iterations=12)
        result = solver.solve(problem)
        naive = np.tile([0.5, 0.0], (8, 1))
        assert problem.min_clearance(result.controls) > problem.min_clearance(naive)

    def test_warm_start_improves_or_matches(self, vehicle_params):
        model = AckermannModel(vehicle_params, dt=0.25)
        positions, headings = straight_reference(speed=1.0)
        problem = MPCProblem(
            model=model,
            initial_state=VehicleState(velocity=1.0),
            reference_positions=positions,
            reference_headings=headings,
        )
        solver = GaussNewtonSolver(max_iterations=6)
        cold = solver.solve(problem)
        warm = solver.solve(problem, initial_controls=cold.controls)
        assert warm.objective <= cold.objective + 1e-9

    def test_respects_bounds(self, vehicle_params):
        model = AckermannModel(vehicle_params, dt=0.25)
        positions, headings = straight_reference(speed=3.0)
        problem = MPCProblem(
            model=model,
            initial_state=VehicleState(),
            reference_positions=positions,
            reference_headings=headings,
        )
        result = GaussNewtonSolver().solve(problem)
        assert np.all(result.controls[:, 0] <= vehicle_params.max_acceleration + 1e-9)
        assert np.all(np.abs(result.controls[:, 1]) <= vehicle_params.max_steer + 1e-9)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            GaussNewtonSolver(max_iterations=0)


class TestCOController:
    def _reference_path(self):
        poses = [SE2(float(i) * 0.5, 0.0, 0.0) for i in range(30)]
        return WaypointPath.from_poses(poses)

    def test_requires_reference_path(self, vehicle_params):
        controller = COController(vehicle_params)
        with pytest.raises(RuntimeError):
            controller.act(VehicleState())

    def test_tracks_reference_and_reports_info(self, vehicle_params):
        controller = COController(vehicle_params, horizon=6)
        controller.set_reference_path(self._reference_path())
        action = controller.act(VehicleState(velocity=0.0), detections=[], time=0.0)
        assert action.throttle > 0.0
        assert not action.reverse
        info = controller.last_info
        assert info is not None
        assert info.num_obstacles == 0
        assert info.solve_time > 0.0

    def test_detections_recorded_in_info(self, vehicle_params):
        controller = COController(vehicle_params, horizon=6)
        controller.set_reference_path(self._reference_path())
        detection = Detection(
            box=OrientedBox(6.0, 3.0, 1.0, 0.8, 0.0), velocity=np.zeros(2), confidence=0.9
        )
        controller.act(VehicleState(), detections=[detection], time=0.0)
        assert controller.last_info.num_obstacles == 1
        assert controller.last_info.obstacle_distances.shape == (1,)

    def test_reset_clears_state(self, vehicle_params):
        controller = COController(vehicle_params, horizon=6)
        controller.set_reference_path(self._reference_path())
        controller.act(VehicleState(), [], 0.0)
        controller.reset()
        assert controller.last_info is None

    def test_invalid_horizon(self, vehicle_params):
        with pytest.raises(ValueError):
            COController(vehicle_params, horizon=1)
