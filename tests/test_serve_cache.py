"""Lifecycle and byte-identity of the shared-memory spatial cache.

The serving layer's correctness claim is that attaching a published segment
yields arrays *byte-identical* to a local build — that is what lets the warm
pool promise bitwise result parity.  These tests pin that claim plus the
refcount/unlink lifecycle the pool's teardown relies on.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.serve.cache import (
    CachedSpatialProvider,
    EpisodeResultCache,
    SpatialCache,
    spatial_cache_key,
)
from repro.spatial import SpatialIndex, TimeGrid
from repro.vehicle.params import VehicleParams
from repro.world.scenario import ScenarioConfig, build_scenario


@pytest.fixture
def cache():
    instance = SpatialCache(prefix=f"icoil-test-{os.getpid():x}")
    yield instance
    instance.unlink_all()
    instance.close()
    SpatialCache.cleanup_orphans(instance.prefix)


def sample_arrays():
    return {
        "occupied": np.arange(12, dtype=np.int8).reshape(3, 4),
        "distance": np.linspace(0.0, 1.0, 12).reshape(3, 4),
    }


class TestSegmentRoundTrip:
    def test_publish_then_attach_returns_identical_bytes(self, cache):
        arrays = sample_arrays()
        meta = {"origin_x": -1.5, "origin_y": 2.0, "resolution": 0.25}
        assert cache.publish("k" * 64, arrays, meta) is True

        other = SpatialCache(prefix=cache.prefix)
        attached = other.attach("k" * 64)
        assert attached is not None
        attached_arrays, attached_meta = attached
        assert attached_meta == meta
        for name, source in arrays.items():
            view = attached_arrays[name]
            assert view.dtype == source.dtype
            assert view.shape == source.shape
            assert view.tobytes() == source.tobytes()
            assert not view.flags.writeable
        other.close()

    def test_attach_missing_key_counts_a_miss(self, cache):
        assert cache.attach("f" * 64) is None
        assert cache.misses == 1

    def test_publish_same_key_twice_reuses_segment(self, cache):
        key = "a" * 64
        assert cache.publish(key, sample_arrays(), {}) is True
        assert cache.publish(key, sample_arrays(), {}) is False
        assert cache.refcount(key) == 2


class TestRefcountLifecycle:
    def test_attach_release_refcounts(self, cache):
        key = "b" * 64
        cache.publish(key, sample_arrays(), {})
        assert cache.refcount(key) == 1
        cache.attach(key)
        cache.attach(key)
        assert cache.refcount(key) == 3
        assert cache.release(key) == 2
        assert cache.release(key) == 1
        assert cache.release(key) == 0
        assert not cache.contains(key)
        # The segment survives in the system until unlinked.
        assert cache.attach(key) is not None

    def test_release_unknown_key_is_noop(self, cache):
        assert cache.release("c" * 64) == 0

    def test_double_unlink_is_safe(self, cache):
        key = "d" * 64
        cache.publish(key, sample_arrays(), {})
        assert cache.unlink(key) is True
        assert cache.unlink(key) is False
        assert cache.attach(key) is None

    def test_close_drops_local_mappings_only(self, cache):
        key = "e" * 64
        cache.publish(key, sample_arrays(), {})
        cache.close()
        assert not cache.contains(key)
        assert cache.attach(key) is not None


class TestOrphanCleanup:
    def test_cleanup_after_sigkilled_worker(self, tmp_path):
        """Segments published by a killed process are swept by prefix."""
        prefix = f"icoil-orphan-{os.getpid():x}"
        script = tmp_path / "orphan_worker.py"
        script.write_text(
            "import sys, time\n"
            "import numpy as np\n"
            "from repro.serve.cache import SpatialCache\n"
            f"cache = SpatialCache(prefix={prefix!r})\n"
            "cache.publish('9' * 64, {'x': np.ones(8)}, {})\n"
            "print('ready', flush=True)\n"
            "time.sleep(60)\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        worker = subprocess.Popen(
            [sys.executable, str(script)], stdout=subprocess.PIPE, env=env, text=True
        )
        try:
            assert worker.stdout.readline().strip() == "ready"
            worker.send_signal(signal.SIGKILL)
            worker.wait(timeout=30)
            # The worker never ran teardown: its segment is orphaned.
            assert os.path.exists(f"/dev/shm/{prefix}-{'9' * 16}")
            removed = SpatialCache.cleanup_orphans(prefix)
            assert removed == [f"{prefix}-{'9' * 16}"]
            assert not os.path.exists(f"/dev/shm/{prefix}-{'9' * 16}")
            assert SpatialCache.cleanup_orphans(prefix) == []
        finally:
            if worker.poll() is None:
                worker.kill()
                worker.wait(timeout=30)
            SpatialCache.cleanup_orphans(prefix)


class TestProviderByteIdentity:
    def test_attached_spatial_index_matches_local_build(self, cache):
        scenario = build_scenario(
            ScenarioConfig(scenario_name="perpendicular-easy", seed=11)
        )
        params = VehicleParams()
        local = SpatialIndex.from_scenario(scenario, vehicle_params=params)
        local.heuristic_to(2.0, 3.0)  # materialise one goal heuristic

        producer = CachedSpatialProvider(cache)
        built = producer.spatial_index(scenario, params)
        built.heuristic_to(2.0, 3.0)
        assert producer.stats["index_builds"] == 1
        producer.flush()

        consumer = CachedSpatialProvider(SpatialCache(prefix=cache.prefix))
        attached = consumer.spatial_index(scenario, params)
        assert consumer.stats["index_shm_hits"] == 1
        assert attached.grid.occupied.tobytes() == local.grid.occupied.tobytes()
        assert attached.field.distance.tobytes() == local.field.distance.tobytes()
        # The heuristic materialised before publish comes back byte-identical
        # (served from the attached arrays, not rebuilt).
        local_h = local.heuristic_to(2.0, 3.0)
        attached_h = attached.heuristic_to(2.0, 3.0)
        assert attached_h.distance.tobytes() == local_h.distance.tobytes()
        consumer.close()

    def test_attached_timegrid_slices_match_local_build(self, cache):
        scenario = build_scenario(
            ScenarioConfig(scenario_name="perpendicular-easy", seed=7, num_dynamic_obstacles=2)
        )
        assert scenario.dynamic_obstacles, "fixture scenario must have dynamic obstacles"
        params = VehicleParams()
        local = TimeGrid.from_scenario(scenario, vehicle_params=params)
        for index in (0, 1):
            local.field_for_slice(index)

        class _Spec:
            horizon = local.horizon
            slice_dt = local.slice_dt
            resolution = local.resolution

            @staticmethod
            def to_dict():
                return {"kind": "test-timegrid"}

        producer = CachedSpatialProvider(cache)
        built = producer.timegrid(scenario, params, _Spec)
        for index in (0, 1):
            built.field_for_slice(index)
        producer.flush()

        consumer = CachedSpatialProvider(SpatialCache(prefix=cache.prefix))
        attached = consumer.timegrid(scenario, params, _Spec)
        assert consumer.stats["timegrid_shm_hits"] == 1
        for index in (0, 1):
            local_field = local.field_for_slice(index)
            attached_field = attached.field_for_slice(index)
            assert (
                attached_field.grid.occupied.tobytes() == local_field.grid.occupied.tobytes()
            )
            assert attached_field.distance.tobytes() == local_field.distance.tobytes()
        consumer.close()


class TestSpatialCacheKey:
    def test_key_separates_kind_vehicle_and_extra(self):
        scenario = build_scenario(ScenarioConfig(scenario_name="parallel-easy", seed=3))
        base = spatial_cache_key(scenario)
        assert base == spatial_cache_key(scenario)
        assert base != spatial_cache_key(scenario, kind="timegrid")
        assert base != spatial_cache_key(scenario, extra={"horizon": 5.0})
        assert base != spatial_cache_key(scenario, VehicleParams(length=9.9))


class TestEpisodeResultCache:
    def test_get_put_and_counters(self):
        from repro.api import EpisodeSpec

        cache = EpisodeResultCache()
        spec = EpisodeSpec(method="expert", max_steps=3)
        assert cache.get(spec) is None
        cache.put(spec, "result", "trace", events=("e",))
        assert cache.get(spec) == ("result", "trace", ("e",))
        assert len(cache) == 1
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5
        # Key-level API shares the same store.
        assert cache.lookup(spec.cache_key()) == ("result", "trace", ("e",))
        cache.clear()
        assert cache.get(spec) is None


class TestBuildClaims:
    """Claim segments: the cross-process "I am building this" coordination."""

    def test_try_claim_is_atomic_across_instances(self, cache):
        sibling = SpatialCache(prefix=cache.prefix)
        try:
            assert cache.try_claim("k" * 64)
            assert cache.claim_held("k" * 64)
            assert not sibling.try_claim("k" * 64)
            assert cache.release_claim("k" * 64)
            assert not cache.claim_held("k" * 64)
            assert sibling.try_claim("k" * 64)
        finally:
            sibling.release_claims()
            sibling.close()

    def test_release_claim_ignores_unowned_claims(self, cache):
        sibling = SpatialCache(prefix=cache.prefix)
        try:
            assert sibling.try_claim("j" * 64)
            # A cache that never took the claim cannot drop it...
            assert not cache.release_claim("j" * 64)
            assert cache.claim_held("j" * 64)
            # ...unless it forces (the orphan-recovery path).
            assert cache.release_claim("j" * 64, force=True)
            assert not cache.claim_held("j" * 64)
        finally:
            sibling.release_claims()
            sibling.close()

    def test_wait_for_returns_arrays_published_under_a_claim(self, cache):
        key = "a" * 64
        waiter = SpatialCache(prefix=cache.prefix)
        try:
            assert cache.try_claim(key)
            cache.publish(key, sample_arrays(), {"kind": "test"})
            attached = waiter.wait_for(key, timeout=1.0)
            assert attached is not None
            arrays, meta = attached
            assert arrays["occupied"].tobytes() == sample_arrays()["occupied"].tobytes()
            assert meta["kind"] == "test"
        finally:
            waiter.close()

    def test_wait_for_gives_up_when_claim_vanishes_unpublished(self, cache):
        key = "b" * 64
        waiter = SpatialCache(prefix=cache.prefix)
        try:
            assert cache.try_claim(key)
            cache.release_claim(key)
            # Claim gone, nothing published: the builder failed — fall back.
            assert waiter.wait_for(key, timeout=5.0) is None
        finally:
            waiter.close()

    def test_wait_for_times_out_while_claim_held(self, cache):
        key = "c" * 64
        waiter = SpatialCache(prefix=cache.prefix)
        try:
            assert cache.try_claim(key)
            start = time.monotonic()
            assert waiter.wait_for(key, timeout=0.2) is None
            assert time.monotonic() - start < 5.0
        finally:
            waiter.close()

    def test_close_releases_held_claims(self, cache):
        sibling = SpatialCache(prefix=cache.prefix)
        sibling.try_claim("d" * 64)
        sibling.close()
        assert not cache.claim_held("d" * 64)

    def test_attach_treats_unfinished_segment_as_miss(self, cache):
        # publish() writes the manifest-length header *last*; a waiter that
        # maps the segment mid-write must see a miss, not parse garbage.
        from multiprocessing import shared_memory

        key = "e" * 64
        shm = shared_memory.SharedMemory(
            name=cache.segment_name(key), create=True, size=64
        )
        try:
            assert bytes(shm.buf[:8]) == b"\x00" * 8  # zeroed header
            assert cache.attach(key) is None
            waiter = SpatialCache(prefix=cache.prefix)
            try:
                assert waiter.wait_for(key, timeout=0.1) is None
            finally:
                waiter.close()
        finally:
            shm.close()
            shm.unlink()

    def test_provider_waits_on_foreign_claim_then_builds_locally(self, cache):
        scenario = build_scenario(
            ScenarioConfig(scenario_name="perpendicular-easy", seed=11)
        )
        params = VehicleParams()
        from repro.serve.cache import spatial_cache_key as key_fn

        key = key_fn(scenario, params, kind="index")
        assert cache.try_claim(key)  # simulate a racing builder that stalls
        provider = CachedSpatialProvider(
            SpatialCache(prefix=cache.prefix), claim_timeout=0.2
        )
        try:
            index = provider.spatial_index(scenario, params)
            assert index is not None
            # The wait was counted, timed out, and the provider fell back to
            # a local build instead of wedging the episode.
            assert provider.stats["index_claim_waits"] == 1
            assert provider.stats["index_builds"] == 1
        finally:
            provider.close()


class TestPlanCache:
    """The cross-episode hybrid-A* plan cache (memo -> shm -> search)."""

    def _plan_result(self):
        from repro.geometry.se2 import SE2
        from repro.planning.hybrid_astar import PlannerResult
        from repro.planning.waypoints import Waypoint, WaypointPath

        waypoints = [
            Waypoint(SE2(0.0, 0.0, 0.0), 1),
            Waypoint(SE2(1.25, 0.5, 0.3), 1),
            Waypoint(SE2(2.0, 1.0, -0.7), -1),
        ]
        return PlannerResult(
            success=True,
            path=WaypointPath(waypoints),
            expanded_nodes=17,
            cost=4.25,
            arrival_times=(0.0, 0.4, 1.1),
        )

    def test_array_round_trip_is_byte_identical(self):
        from repro.serve.cache import plan_from_arrays, plan_to_arrays

        original = self._plan_result()
        rebuilt = plan_from_arrays(*plan_to_arrays(original))
        assert rebuilt.success and rebuilt.cost == original.cost
        assert rebuilt.expanded_nodes == original.expanded_nodes
        assert rebuilt.arrival_times == original.arrival_times
        for rebuilt_wp, original_wp in zip(rebuilt.path.waypoints, original.path.waypoints):
            assert rebuilt_wp.direction == original_wp.direction
            assert rebuilt_wp.pose.x == original_wp.pose.x  # bitwise: float64 end to end
            assert rebuilt_wp.pose.y == original_wp.pose.y
            assert rebuilt_wp.pose.theta == original_wp.pose.theta

    def test_key_covers_query_and_planner_knobs(self, cache):
        from repro.geometry.se2 import SE2
        from repro.planning.hybrid_astar import HybridAStarPlanner

        scenario = build_scenario(ScenarioConfig(scenario_name="parallel-easy", seed=3))
        params = VehicleParams()
        provider = CachedSpatialProvider(cache)
        try:
            plans = provider.plan_cache_for(scenario, params)
            planner = HybridAStarPlanner(params)
            base = plans.key_for(SE2(1.0, 2.0, 0.5), 0.0, planner)
            assert base == plans.key_for(SE2(1.0, 2.0, 0.5), 0.0, planner)
            assert base != plans.key_for(SE2(1.0, 2.0, 0.6), 0.0, planner)
            assert base != plans.key_for(SE2(1.0, 2.0, 0.5), 1.5, planner)
            tweaked = HybridAStarPlanner(params)
            tweaked.reverse_penalty = planner.reverse_penalty + 1.0
            assert base != plans.key_for(SE2(1.0, 2.0, 0.5), 0.0, tweaked)
        finally:
            provider.close()

    def test_hit_returns_byte_identical_plan_from_memo_and_shm(self, cache):
        from repro.geometry.se2 import SE2
        from repro.planning.hybrid_astar import HybridAStarPlanner

        scenario = build_scenario(ScenarioConfig(scenario_name="parallel-easy", seed=3))
        params = VehicleParams()
        planner = HybridAStarPlanner(params)
        start = SE2(1.0, 2.0, 0.5)
        result = self._plan_result()

        producer = CachedSpatialProvider(cache)
        producer.plan_cache_for(scenario, params).store(start, 0.0, planner, result)
        assert producer.stats["plan_builds"] == 1
        memo_hit = producer.plan_cache_for(scenario, params).lookup(start, 0.0, planner)
        assert memo_hit is result  # in-process memo returns the object itself
        assert producer.stats["plan_memo_hits"] == 1

        # A sibling process (fresh provider, no memo) attaches the published
        # arrays and reconstructs the plan bit-for-bit.
        consumer = CachedSpatialProvider(SpatialCache(prefix=cache.prefix))
        try:
            shm_hit = consumer.plan_cache_for(scenario, params).lookup(start, 0.0, planner)
            assert shm_hit is not None
            assert consumer.stats["plan_shm_hits"] == 1
            for hit_wp, original_wp in zip(shm_hit.path.waypoints, result.path.waypoints):
                assert hit_wp.pose.x == original_wp.pose.x
                assert hit_wp.pose.theta == original_wp.pose.theta
                assert hit_wp.direction == original_wp.direction
        finally:
            consumer.close()

    def test_failed_plans_memoize_locally_without_publishing(self, cache):
        from repro.geometry.se2 import SE2
        from repro.planning.hybrid_astar import HybridAStarPlanner, PlannerResult

        scenario = build_scenario(ScenarioConfig(scenario_name="parallel-easy", seed=3))
        params = VehicleParams()
        planner = HybridAStarPlanner(params)
        start = SE2(9.0, 9.0, 0.0)
        failure = PlannerResult(success=False, path=None, expanded_nodes=3)

        provider = CachedSpatialProvider(cache)
        plans = provider.plan_cache_for(scenario, params)
        plans.store(start, 0.0, planner, failure)
        key = plans.key_for(start, 0.0, planner)
        assert cache.attach(key) is None  # never published
        assert not cache.claim_held(key)  # claim released despite the failure
        assert plans.lookup(start, 0.0, planner) is failure  # memoized locally

        # A sibling sees nothing (and takes the build claim for itself).
        sibling = CachedSpatialProvider(SpatialCache(prefix=cache.prefix))
        try:
            assert sibling.plan_cache_for(scenario, params).lookup(start, 0.0, planner) is None
        finally:
            sibling.cache.release_claims()
            sibling.close()

    def test_expert_episodes_reuse_plans_with_identical_traces(self, cache):
        from repro.api import EpisodeSpec
        from repro.api.session import run_episode_spec
        from repro.spatial.provider import clear_spatial_provider, install_spatial_provider

        spec = EpisodeSpec(
            method="expert",
            scenario=ScenarioConfig(scenario_name="perpendicular-easy", seed=11),
            max_steps=12,
        )
        baseline = run_episode_spec(spec)  # no provider: plain search

        provider = CachedSpatialProvider(cache)
        install_spatial_provider(provider)
        try:
            first = run_episode_spec(spec)
            builds = provider.stats["plan_builds"]
            assert builds >= 1
            second = run_episode_spec(spec)
            # The replayed episode issues the same queries: all memo hits.
            assert provider.stats["plan_builds"] == builds
            assert provider.stats["plan_memo_hits"] >= builds
            provider.flush()

            # A sibling process replaying the scenario attaches the
            # published plan instead of searching.
            sibling = CachedSpatialProvider(SpatialCache(prefix=cache.prefix))
            install_spatial_provider(sibling)
            third = run_episode_spec(spec)
            assert sibling.stats["plan_shm_hits"] >= 1
            assert sibling.stats["plan_builds"] == 0
            sibling.close()
        finally:
            clear_spatial_provider()
            provider.close()

        for outcome in (first, second, third):
            assert outcome.result == baseline.result
            assert outcome.trace.positions.tobytes() == baseline.trace.positions.tobytes()
            assert outcome.events == baseline.events
