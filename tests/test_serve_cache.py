"""Lifecycle and byte-identity of the shared-memory spatial cache.

The serving layer's correctness claim is that attaching a published segment
yields arrays *byte-identical* to a local build — that is what lets the warm
pool promise bitwise result parity.  These tests pin that claim plus the
refcount/unlink lifecycle the pool's teardown relies on.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.serve.cache import (
    CachedSpatialProvider,
    EpisodeResultCache,
    SpatialCache,
    spatial_cache_key,
)
from repro.spatial import SpatialIndex, TimeGrid
from repro.vehicle.params import VehicleParams
from repro.world.scenario import ScenarioConfig, build_scenario


@pytest.fixture
def cache():
    instance = SpatialCache(prefix=f"icoil-test-{os.getpid():x}")
    yield instance
    instance.unlink_all()
    instance.close()
    SpatialCache.cleanup_orphans(instance.prefix)


def sample_arrays():
    return {
        "occupied": np.arange(12, dtype=np.int8).reshape(3, 4),
        "distance": np.linspace(0.0, 1.0, 12).reshape(3, 4),
    }


class TestSegmentRoundTrip:
    def test_publish_then_attach_returns_identical_bytes(self, cache):
        arrays = sample_arrays()
        meta = {"origin_x": -1.5, "origin_y": 2.0, "resolution": 0.25}
        assert cache.publish("k" * 64, arrays, meta) is True

        other = SpatialCache(prefix=cache.prefix)
        attached = other.attach("k" * 64)
        assert attached is not None
        attached_arrays, attached_meta = attached
        assert attached_meta == meta
        for name, source in arrays.items():
            view = attached_arrays[name]
            assert view.dtype == source.dtype
            assert view.shape == source.shape
            assert view.tobytes() == source.tobytes()
            assert not view.flags.writeable
        other.close()

    def test_attach_missing_key_counts_a_miss(self, cache):
        assert cache.attach("f" * 64) is None
        assert cache.misses == 1

    def test_publish_same_key_twice_reuses_segment(self, cache):
        key = "a" * 64
        assert cache.publish(key, sample_arrays(), {}) is True
        assert cache.publish(key, sample_arrays(), {}) is False
        assert cache.refcount(key) == 2


class TestRefcountLifecycle:
    def test_attach_release_refcounts(self, cache):
        key = "b" * 64
        cache.publish(key, sample_arrays(), {})
        assert cache.refcount(key) == 1
        cache.attach(key)
        cache.attach(key)
        assert cache.refcount(key) == 3
        assert cache.release(key) == 2
        assert cache.release(key) == 1
        assert cache.release(key) == 0
        assert not cache.contains(key)
        # The segment survives in the system until unlinked.
        assert cache.attach(key) is not None

    def test_release_unknown_key_is_noop(self, cache):
        assert cache.release("c" * 64) == 0

    def test_double_unlink_is_safe(self, cache):
        key = "d" * 64
        cache.publish(key, sample_arrays(), {})
        assert cache.unlink(key) is True
        assert cache.unlink(key) is False
        assert cache.attach(key) is None

    def test_close_drops_local_mappings_only(self, cache):
        key = "e" * 64
        cache.publish(key, sample_arrays(), {})
        cache.close()
        assert not cache.contains(key)
        assert cache.attach(key) is not None


class TestOrphanCleanup:
    def test_cleanup_after_sigkilled_worker(self, tmp_path):
        """Segments published by a killed process are swept by prefix."""
        prefix = f"icoil-orphan-{os.getpid():x}"
        script = tmp_path / "orphan_worker.py"
        script.write_text(
            "import sys, time\n"
            "import numpy as np\n"
            "from repro.serve.cache import SpatialCache\n"
            f"cache = SpatialCache(prefix={prefix!r})\n"
            "cache.publish('9' * 64, {'x': np.ones(8)}, {})\n"
            "print('ready', flush=True)\n"
            "time.sleep(60)\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        worker = subprocess.Popen(
            [sys.executable, str(script)], stdout=subprocess.PIPE, env=env, text=True
        )
        try:
            assert worker.stdout.readline().strip() == "ready"
            worker.send_signal(signal.SIGKILL)
            worker.wait(timeout=30)
            # The worker never ran teardown: its segment is orphaned.
            assert os.path.exists(f"/dev/shm/{prefix}-{'9' * 16}")
            removed = SpatialCache.cleanup_orphans(prefix)
            assert removed == [f"{prefix}-{'9' * 16}"]
            assert not os.path.exists(f"/dev/shm/{prefix}-{'9' * 16}")
            assert SpatialCache.cleanup_orphans(prefix) == []
        finally:
            if worker.poll() is None:
                worker.kill()
                worker.wait(timeout=30)
            SpatialCache.cleanup_orphans(prefix)


class TestProviderByteIdentity:
    def test_attached_spatial_index_matches_local_build(self, cache):
        scenario = build_scenario(
            ScenarioConfig(scenario_name="perpendicular-easy", seed=11)
        )
        params = VehicleParams()
        local = SpatialIndex.from_scenario(scenario, vehicle_params=params)
        local.heuristic_to(2.0, 3.0)  # materialise one goal heuristic

        producer = CachedSpatialProvider(cache)
        built = producer.spatial_index(scenario, params)
        built.heuristic_to(2.0, 3.0)
        assert producer.stats["index_builds"] == 1
        producer.flush()

        consumer = CachedSpatialProvider(SpatialCache(prefix=cache.prefix))
        attached = consumer.spatial_index(scenario, params)
        assert consumer.stats["index_shm_hits"] == 1
        assert attached.grid.occupied.tobytes() == local.grid.occupied.tobytes()
        assert attached.field.distance.tobytes() == local.field.distance.tobytes()
        # The heuristic materialised before publish comes back byte-identical
        # (served from the attached arrays, not rebuilt).
        local_h = local.heuristic_to(2.0, 3.0)
        attached_h = attached.heuristic_to(2.0, 3.0)
        assert attached_h.distance.tobytes() == local_h.distance.tobytes()
        consumer.close()

    def test_attached_timegrid_slices_match_local_build(self, cache):
        scenario = build_scenario(
            ScenarioConfig(scenario_name="perpendicular-easy", seed=7, num_dynamic_obstacles=2)
        )
        assert scenario.dynamic_obstacles, "fixture scenario must have dynamic obstacles"
        params = VehicleParams()
        local = TimeGrid.from_scenario(scenario, vehicle_params=params)
        for index in (0, 1):
            local.field_for_slice(index)

        class _Spec:
            horizon = local.horizon
            slice_dt = local.slice_dt
            resolution = local.resolution

            @staticmethod
            def to_dict():
                return {"kind": "test-timegrid"}

        producer = CachedSpatialProvider(cache)
        built = producer.timegrid(scenario, params, _Spec)
        for index in (0, 1):
            built.field_for_slice(index)
        producer.flush()

        consumer = CachedSpatialProvider(SpatialCache(prefix=cache.prefix))
        attached = consumer.timegrid(scenario, params, _Spec)
        assert consumer.stats["timegrid_shm_hits"] == 1
        for index in (0, 1):
            local_field = local.field_for_slice(index)
            attached_field = attached.field_for_slice(index)
            assert (
                attached_field.grid.occupied.tobytes() == local_field.grid.occupied.tobytes()
            )
            assert attached_field.distance.tobytes() == local_field.distance.tobytes()
        consumer.close()


class TestSpatialCacheKey:
    def test_key_separates_kind_vehicle_and_extra(self):
        scenario = build_scenario(ScenarioConfig(scenario_name="parallel-easy", seed=3))
        base = spatial_cache_key(scenario)
        assert base == spatial_cache_key(scenario)
        assert base != spatial_cache_key(scenario, kind="timegrid")
        assert base != spatial_cache_key(scenario, extra={"horizon": 5.0})
        assert base != spatial_cache_key(scenario, VehicleParams(length=9.9))


class TestEpisodeResultCache:
    def test_get_put_and_counters(self):
        from repro.api import EpisodeSpec

        cache = EpisodeResultCache()
        spec = EpisodeSpec(method="expert", max_steps=3)
        assert cache.get(spec) is None
        cache.put(spec, "result", "trace", events=("e",))
        assert cache.get(spec) == ("result", "trace", ("e",))
        assert len(cache) == 1
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5
        # Key-level API shares the same store.
        assert cache.lookup(spec.cache_key()) == ("result", "trace", ("e",))
        cache.clear()
        assert cache.get(spec) is None
