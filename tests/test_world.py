"""Tests for obstacles, the parking lot, scenarios and the world simulator."""

import math

import numpy as np
import pytest

from repro.geometry.se2 import SE2
from repro.vehicle import Action
from repro.world import (
    DifficultyLevel,
    EpisodeStatus,
    ParkingWorld,
    ScenarioConfig,
    SpawnMode,
    build_scenario,
)
from repro.world.obstacles import make_parked_car, make_patrolling_obstacle
from repro.world.parking_lot import ParkingSpace, default_parking_lot
from repro.world.scenario import scenario_for_level


class TestObstacles:
    def test_static_obstacle_never_moves(self):
        obstacle = make_parked_car("car", 5.0, 5.0, 0.3)
        assert obstacle.at_time(100.0) is obstacle
        assert not obstacle.is_dynamic

    def test_dynamic_obstacle_moves_along_path(self):
        obstacle = make_patrolling_obstacle("walker", [(0.0, 0.0), (10.0, 0.0)], speed=1.0)
        early, _ = obstacle.position_at(1.0)
        later, _ = obstacle.position_at(5.0)
        assert later[0] > early[0]

    def test_dynamic_obstacle_ping_pong(self):
        obstacle = make_patrolling_obstacle("walker", [(0.0, 0.0), (10.0, 0.0)], speed=1.0)
        at_far_end, _ = obstacle.position_at(10.0)
        coming_back, _ = obstacle.position_at(15.0)
        assert at_far_end[0] == pytest.approx(10.0)
        assert coming_back[0] == pytest.approx(5.0)

    def test_dynamic_obstacle_requires_waypoints(self):
        with pytest.raises(ValueError):
            make_patrolling_obstacle("bad", [(0.0, 0.0)])

    def test_predicted_positions_shape(self):
        obstacle = make_patrolling_obstacle("walker", [(0.0, 0.0), (4.0, 0.0)], speed=0.5)
        predictions = obstacle.predicted_positions(0.0, 0.1, 8)
        assert predictions.shape == (8, 2)

    def test_at_time_moves_box(self):
        obstacle = make_patrolling_obstacle("walker", [(0.0, 0.0), (4.0, 0.0)], speed=1.0)
        moved = obstacle.at_time(2.0)
        assert moved.box.center_x == pytest.approx(2.0)


class TestParkingLot:
    def test_default_lot_contains_goal(self):
        lot = default_parking_lot()
        assert lot.contains(lot.goal_pose.position)

    def test_spawn_pose_inside_region(self, rng):
        lot = default_parking_lot()
        for _ in range(10):
            pose = lot.sample_spawn_pose(rng)
            assert lot.spawn_region.contains(pose.position)

    def test_parking_space_accepts_both_orientations(self):
        space = ParkingSpace.from_target("s", SE2(0.0, 0.0, math.pi / 2))
        assert space.contains_pose(SE2(0.1, 0.1, math.pi / 2))
        assert space.contains_pose(SE2(0.1, 0.1, -math.pi / 2))
        assert not space.contains_pose(SE2(2.0, 0.0, math.pi / 2))

    def test_distance_to_goal(self):
        lot = default_parking_lot()
        assert lot.distance_to_goal(lot.goal_pose.position) == pytest.approx(0.0)


class TestScenario:
    def test_easy_has_no_dynamic_obstacles(self):
        scenario = scenario_for_level(DifficultyLevel.EASY, seed=0)
        assert len(scenario.static_obstacles) == 3
        assert len(scenario.dynamic_obstacles) == 0

    def test_normal_has_dynamic_obstacles(self):
        scenario = scenario_for_level(DifficultyLevel.NORMAL, seed=0)
        assert len(scenario.dynamic_obstacles) == 2

    def test_hard_enables_noise(self):
        config = ScenarioConfig(difficulty=DifficultyLevel.HARD)
        assert config.resolved_image_noise > 0.0
        assert config.resolved_detection_noise > ScenarioConfig(
            difficulty=DifficultyLevel.EASY
        ).resolved_detection_noise

    def test_explicit_zero_noise_override_wins_on_hard(self):
        """An explicit 0.0 disables noise even on HARD (None means difficulty-implied)."""
        config = ScenarioConfig(
            difficulty=DifficultyLevel.HARD, image_noise_std=0.0, detection_noise_std=0.0
        )
        assert config.resolved_image_noise == 0.0
        assert config.resolved_detection_noise == 0.0

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(image_noise_std=-0.1)
        with pytest.raises(ValueError):
            ScenarioConfig(detection_noise_std=-0.1)

    def test_spawn_modes(self):
        close = build_scenario(ScenarioConfig(spawn_mode=SpawnMode.CLOSE, seed=0))
        remote = build_scenario(ScenarioConfig(spawn_mode=SpawnMode.REMOTE, seed=0))
        goal = close.goal_pose.position
        assert np.hypot(*(close.start_pose.position - goal)) < np.hypot(
            *(remote.start_pose.position - goal)
        )

    def test_random_spawn_deterministic_per_seed(self):
        a = build_scenario(ScenarioConfig(seed=7))
        b = build_scenario(ScenarioConfig(seed=7))
        c = build_scenario(ScenarioConfig(seed=8))
        assert a.start_pose == b.start_pose
        assert a.start_pose != c.start_pose

    def test_obstacle_count_override(self):
        scenario = build_scenario(ScenarioConfig(num_static_obstacles=1, num_dynamic_obstacles=0))
        assert len(scenario.obstacles) == 1

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(num_static_obstacles=-1)


class TestParkingWorld:
    def test_initial_state_matches_scenario(self, easy_scenario):
        world = ParkingWorld(easy_scenario)
        assert world.state.x == pytest.approx(easy_scenario.start_pose.x)
        assert world.status is EpisodeStatus.RUNNING

    def test_step_advances_time(self, easy_scenario):
        world = ParkingWorld(easy_scenario, dt=0.1)
        world.step(Action(throttle=0.5))
        assert world.time == pytest.approx(0.1)
        assert len(world.trajectory) == 2

    def test_idle_vehicle_does_not_terminate_quickly(self, easy_scenario):
        world = ParkingWorld(easy_scenario, time_limit=5.0)
        for _ in range(10):
            result = world.step(Action.idle())
        assert result.status is EpisodeStatus.RUNNING

    def test_timeout(self, easy_scenario):
        world = ParkingWorld(easy_scenario, dt=0.1, time_limit=0.5)
        status = EpisodeStatus.RUNNING
        for _ in range(10):
            if status.is_terminal:
                break
            status = world.step(Action.idle()).status
        assert status is EpisodeStatus.TIMED_OUT

    def test_step_after_terminal_raises(self, easy_scenario):
        world = ParkingWorld(easy_scenario, dt=0.1, time_limit=0.1)
        world.step(Action.idle())
        with pytest.raises(RuntimeError):
            world.step(Action.idle())

    def test_reset_restores_initial_conditions(self, easy_scenario):
        world = ParkingWorld(easy_scenario, dt=0.1, time_limit=0.2)
        world.step(Action(throttle=1.0))
        world.reset()
        assert world.time == 0.0
        assert world.status is EpisodeStatus.RUNNING
        assert len(world.trajectory) == 1

    def test_collision_detected_when_driving_into_obstacle(self, easy_scenario):
        world = ParkingWorld(easy_scenario, time_limit=120.0)
        # Drive straight towards the static obstacles long enough to hit one
        # or leave the lot; either way the episode must terminate.
        status = EpisodeStatus.RUNNING
        for _ in range(1000):
            if status.is_terminal:
                break
            status = world.step(Action(throttle=1.0, steer=0.0)).status
        assert status in (EpisodeStatus.COLLIDED, EpisodeStatus.OUT_OF_BOUNDS)

    def test_min_obstacle_distance_positive_at_start(self, easy_scenario):
        world = ParkingWorld(easy_scenario)
        assert world.min_obstacle_distance() > 0.0

    def test_parked_status_when_placed_in_goal(self, easy_scenario):
        world = ParkingWorld(easy_scenario)
        goal = easy_scenario.goal_pose
        world._state = world._state.__class__(goal.x, goal.y, goal.theta, 0.0, 0.0)
        assert world._evaluate_status() is EpisodeStatus.PARKED

    def test_invalid_time_limit(self, easy_scenario):
        with pytest.raises(ValueError):
            ParkingWorld(easy_scenario, time_limit=0.0)
