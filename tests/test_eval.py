"""Tests for the evaluation harness: metrics, runner and report formatting."""

import numpy as np
import pytest

from repro.api import EpisodeSpec
from repro.api.session import run_episode_spec
from repro.eval import EpisodeResult, EpisodeRunner, aggregate_results, format_table2
from repro.eval.experiments import Table2Row
from repro.eval.metrics import MethodStatistics
from repro.eval.report import format_fig8_grid, format_parking_time_distributions
from repro.eval.experiments import Fig8Cell
from repro.world.scenario import DifficultyLevel, ScenarioConfig, SpawnMode
from repro.world.world import EpisodeStatus


def make_result(method="icoil", status=EpisodeStatus.PARKED, time=25.0, difficulty="easy", seed=0):
    return EpisodeResult(
        method=method,
        difficulty=difficulty,
        seed=seed,
        status=status,
        parking_time=time,
        num_steps=int(time * 10),
    )


class TestMetrics:
    def test_aggregate_success_rate(self):
        results = [
            make_result(time=20.0),
            make_result(time=30.0),
            make_result(status=EpisodeStatus.COLLIDED, time=10.0),
        ]
        stats = aggregate_results(results)
        assert stats.num_episodes == 3
        assert stats.num_successes == 2
        assert stats.success_rate == pytest.approx(2.0 / 3.0)
        assert stats.average_time == pytest.approx(25.0)
        assert stats.max_time == 30.0
        assert stats.min_time == 20.0

    def test_aggregate_failures_only_gives_nan_times(self):
        stats = aggregate_results([make_result(status=EpisodeStatus.TIMED_OUT)])
        assert stats.num_successes == 0
        assert np.isnan(stats.average_time)

    def test_aggregate_rejects_mixed_methods(self):
        with pytest.raises(ValueError):
            aggregate_results([make_result(method="il"), make_result(method="icoil")])

    def test_aggregate_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate_results([])

    def test_success_property(self):
        assert make_result().success
        assert not make_result(status=EpisodeStatus.COLLIDED).success


class TestEpisodeRunner:
    """Episode execution through :mod:`repro.api` (the shim-free path)."""

    def test_unknown_method_rejected(self, small_policy):
        with pytest.raises(ValueError):
            run_episode_spec(EpisodeSpec(method="magic"), il_policy=small_policy)

    def test_il_method_requires_policy(self):
        with pytest.raises(ValueError):
            run_episode_spec(EpisodeSpec(method="il"), il_policy=None)

    def test_build_controller_resolves_registered_methods(self):
        from repro.world.scenario import build_scenario

        runner = EpisodeRunner()
        config = ScenarioConfig(difficulty=DifficultyLevel.EASY, spawn_mode=SpawnMode.CLOSE, seed=0)
        controller = runner.build_controller("expert", build_scenario(config))
        assert hasattr(controller, "step")

    def test_expert_episode_runs_and_traces(self):
        config = ScenarioConfig(difficulty=DifficultyLevel.EASY, spawn_mode=SpawnMode.CLOSE, seed=0)
        outcome = run_episode_spec(
            EpisodeSpec(method="expert", scenario=config, time_limit=70.0)
        )
        result, trace = outcome.result, outcome.trace
        assert result.method == "expert"
        assert result.status is EpisodeStatus.PARKED
        assert trace.num_frames == result.num_steps
        assert trace.positions.shape == (result.num_steps, 2)

    def test_il_episode_short_run(self, small_policy):
        config = ScenarioConfig(difficulty=DifficultyLevel.EASY, spawn_mode=SpawnMode.CLOSE, seed=0)
        outcome = run_episode_spec(
            EpisodeSpec(method="il", scenario=config, time_limit=10.0, max_steps=20),
            il_policy=small_policy,
        )
        result, trace = outcome.result, outcome.trace
        assert result.num_steps <= 20
        assert len(trace.modes) == result.num_steps
        assert set(trace.modes) == {"il"}

    def test_icoil_episode_records_modes(self, small_policy):
        config = ScenarioConfig(difficulty=DifficultyLevel.EASY, spawn_mode=SpawnMode.CLOSE, seed=0)
        outcome = run_episode_spec(
            EpisodeSpec(method="icoil", scenario=config, time_limit=10.0, max_steps=8),
            il_policy=small_policy,
        )
        result, trace = outcome.result, outcome.trace
        assert set(trace.modes) <= {"il", "co"}
        assert 0.0 <= result.co_mode_fraction <= 1.0
        assert trace.uncertainties.shape == (result.num_steps,)


class TestReportFormatting:
    def test_format_table2(self):
        rows = [
            Table2Row(
                "easy",
                "icoil",
                MethodStatistics("icoil", "easy", 10, 9, 26.0, 27.2, 24.9),
            ),
            Table2Row(
                "easy",
                "il",
                MethodStatistics("il", "easy", 10, 7, 23.6, 25.2, 22.5),
            ),
        ]
        text = format_table2(rows)
        assert "Easy Task" in text
        assert "icoil" in text and "il" in text
        assert "90%" in text

    def test_format_fig8_grid(self):
        cells = [
            Fig8Cell("close", 1, 20.0, 1.0, 1.0),
            Fig8Cell("close", 3, 21.0, 1.5, 1.0),
            Fig8Cell("remote", 1, 28.0, 2.0, 1.0),
            Fig8Cell("remote", 3, 31.0, 2.5, 1.0),
        ]
        text = format_fig8_grid(cells)
        assert "close" in text and "remote" in text
        assert "1 obst." in text and "3 obst." in text

    def test_format_parking_time_distributions(self):
        text = format_parking_time_distributions(
            {"icoil": np.array([25.0, 26.0]), "il": np.array([])}
        )
        assert "icoil" in text and "il" in text
