"""Tests for the scenario registry, procedural builds and their determinism.

The hard requirement from the scenario engine: the same seed + scenario name
must serialize to a byte-identical dictionary, within a process and across
processes (no reliance on hash order or interpreter state).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.geometry.collision import polygon_polygon_collision, shapes_collide
from repro.world import (
    ScenarioConfig,
    SpawnMode,
    build_scenario,
    default_scenario_registry,
    scenario_to_dict,
)
from repro.world.registry import ScenarioRegistry

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")

PRESET_NAMES = default_scenario_registry().names()


class TestScenarioRegistry:
    def test_builtin_presets_registered(self):
        names = default_scenario_registry().names()
        assert "legacy" in names
        # At least four distinct layout families beyond the paper's lot.
        families = {name.split("-")[0] for name in names if name != "legacy"}
        assert {"perpendicular", "parallel", "angled", "dead"} <= families

    def test_unknown_scenario_lists_registered(self):
        with pytest.raises(ValueError, match="registered scenarios"):
            build_scenario(ScenarioConfig(scenario_name="no-such-lot"))

    def test_duplicate_registration_rejected(self):
        registry = ScenarioRegistry()
        registry.register("lot", lambda config: None)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("lot", lambda config: None)
        registry.register("lot", lambda config: "replaced", overwrite=True)
        assert registry.factory_for("lot")(None) == "replaced"

    def test_decorator_registration(self):
        registry = ScenarioRegistry()

        @registry.register("custom")
        def build_custom(config):
            return "built"

        assert "custom" in registry
        assert registry.factory_for("custom")(None) == "built"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ScenarioRegistry().register("")


class TestProceduralScenarios:
    @pytest.mark.parametrize("name", PRESET_NAMES)
    def test_obstacles_collision_free(self, name):
        scenario = build_scenario(ScenarioConfig(scenario_name=name, seed=11))
        statics = scenario.static_obstacles
        for i in range(len(statics)):
            for j in range(i + 1, len(statics)):
                assert not polygon_polygon_collision(
                    statics[i].box.to_polygon(), statics[j].box.to_polygon()
                ), f"{name}: {statics[i].obstacle_id} overlaps {statics[j].obstacle_id}"

    @pytest.mark.parametrize("name", PRESET_NAMES)
    def test_goal_space_not_blocked(self, name):
        scenario = build_scenario(ScenarioConfig(scenario_name=name, seed=11))
        goal_box = scenario.lot.goal_space.box.to_polygon()
        for obstacle in scenario.static_obstacles:
            assert not polygon_polygon_collision(goal_box, obstacle.box.to_polygon())

    @pytest.mark.parametrize("name", PRESET_NAMES)
    @pytest.mark.parametrize("mode", list(SpawnMode))
    def test_spawn_footprint_collision_free(self, name, mode, vehicle_params):
        from repro.vehicle.state import VehicleState

        scenario = build_scenario(
            ScenarioConfig(scenario_name=name, spawn_mode=mode, seed=5)
        )
        footprint = VehicleState.from_pose(scenario.start_pose).footprint(vehicle_params)
        for obstacle in scenario.obstacles:
            assert not shapes_collide(footprint, obstacle.at_time(0.0).box), (
                f"{name}/{mode.value}: spawn collides with {obstacle.obstacle_id}"
            )

    def test_difficulty_controls_dynamic_obstacles(self):
        easy = build_scenario(ScenarioConfig(scenario_name="perpendicular-easy", seed=0))
        from repro.world import DifficultyLevel

        normal = build_scenario(
            ScenarioConfig(
                scenario_name="perpendicular-easy",
                difficulty=DifficultyLevel.NORMAL,
                seed=0,
            )
        )
        assert len(easy.dynamic_obstacles) == 0
        assert len(normal.dynamic_obstacles) == 2

    def test_layout_params_override_geometry(self):
        wide = build_scenario(
            ScenarioConfig(
                scenario_name="perpendicular-easy",
                layout_params={"aisle_width": 9.0},
                seed=0,
            )
        )
        assert wide.layout.aisle_width == 9.0

    def test_clutter_preset_adds_clutter(self):
        scenario = build_scenario(ScenarioConfig(scenario_name="angled-cluttered", seed=3))
        assert any(o.obstacle_id.startswith("clutter-") for o in scenario.obstacles)

    def test_seed_variation_changes_placement(self):
        a = scenario_to_dict(build_scenario(ScenarioConfig(scenario_name="angled-easy", seed=1)))
        b = scenario_to_dict(build_scenario(ScenarioConfig(scenario_name="angled-easy", seed=2)))
        assert a["obstacles"] != b["obstacles"]

    @pytest.mark.parametrize("name", [n for n in PRESET_NAMES if n != "legacy"])
    def test_patrol_corridors_clear_of_static_obstacles(self, name):
        """Patrols never drive through walls or clutter (swept-route check)."""
        from repro.geometry.shapes import OrientedBox
        from repro.world import DifficultyLevel

        for seed in (0, 5, 9):
            scenario = build_scenario(
                ScenarioConfig(
                    scenario_name=name, seed=seed, difficulty=DifficultyLevel.NORMAL
                )
            )
            statics = [o.box.to_polygon() for o in scenario.static_obstacles]
            for dynamic in scenario.dynamic_obstacles:
                (x0, y0), (x1, y1) = dynamic.waypoints
                corridor = OrientedBox(
                    (x0 + x1) / 2.0,
                    (y0 + y1) / 2.0,
                    max(abs(x1 - x0), 1.0) + 0.6,
                    max(abs(y1 - y0), 1.0) + 0.6,
                    0.0,
                ).to_polygon()
                for polygon in statics:
                    assert not polygon_polygon_collision(corridor, polygon), (
                        f"{name}/seed={seed}: {dynamic.obstacle_id} sweeps through a static obstacle"
                    )

    def test_pre_registry_payload_zero_noise_means_difficulty_implied(self):
        """Dicts serialized before the Optional-noise sentinel keep HARD noise."""
        from repro.world import DifficultyLevel

        old_payload = {
            "difficulty": "hard",
            "spawn_mode": "random",
            "num_static_obstacles": 3,
            "num_dynamic_obstacles": None,
            "seed": 1,
            "image_noise_std": 0.0,
            "detection_noise_std": 0.0,
        }
        config = ScenarioConfig.from_dict(old_payload)
        assert config.resolved_image_noise == pytest.approx(0.08)
        assert config.resolved_detection_noise == pytest.approx(0.25)
        # New payloads carry the registry reference, so explicit 0.0 survives.
        explicit = ScenarioConfig.from_dict(
            ScenarioConfig(
                difficulty=DifficultyLevel.HARD, image_noise_std=0.0, detection_noise_std=0.0
            ).to_dict()
        )
        assert explicit.resolved_image_noise == 0.0
        assert explicit.resolved_detection_noise == 0.0


class TestScenarioDeterminism:
    @pytest.mark.parametrize("name", PRESET_NAMES)
    def test_same_seed_identical_dict(self, name):
        config = ScenarioConfig(scenario_name=name, seed=7)
        first = json.dumps(scenario_to_dict(build_scenario(config)), sort_keys=True)
        second = json.dumps(scenario_to_dict(build_scenario(config)), sort_keys=True)
        assert first == second

    def test_cross_process_byte_identical(self):
        """Two fresh interpreters serialize every preset identically (and match us)."""
        code = (
            "import json\n"
            "from repro.world import ScenarioConfig, build_scenario, "
            "default_scenario_registry, scenario_to_dict\n"
            "payload = {\n"
            "    name: scenario_to_dict(build_scenario(ScenarioConfig(scenario_name=name, seed=7)))\n"
            "    for name in default_scenario_registry().names()\n"
            "}\n"
            "print(json.dumps(payload, sort_keys=True))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        outputs = []
        for _ in range(2):
            result = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(result.stdout.strip())
        assert outputs[0] == outputs[1]

        in_process = json.dumps(
            {
                name: scenario_to_dict(
                    build_scenario(ScenarioConfig(scenario_name=name, seed=7))
                )
                for name in default_scenario_registry().names()
            },
            sort_keys=True,
        )
        assert outputs[0] == in_process
