"""Unit tests for the individual MoCAM node-graph components."""

import pytest

from repro.co.controller import COController
from repro.core.config import ICOILConfig
from repro.il.expert import ExpertDriver
from repro.metaverse import (
    CommandMuxNode,
    CONode,
    HSANode,
    ILNode,
    PerceptionNode,
    SimulatorBridgeNode,
    Topics,
)
from repro.middleware import (
    ControlCommandMessage,
    DetectionArrayMessage,
    EgoStateMessage,
    HSAStatusMessage,
    ILProbabilitiesMessage,
    MessageBus,
)
from repro.vehicle.actions import Action
from repro.world.world import ParkingWorld


@pytest.fixture
def world(easy_scenario, vehicle_params):
    return ParkingWorld(easy_scenario, vehicle_params, time_limit=30.0)


@pytest.fixture
def bus():
    return MessageBus()


class TestPerceptionNode:
    def test_publishes_image_and_detections(self, bus, world):
        node = PerceptionNode(bus, world)
        node.step(0.0)
        assert bus.latest(Topics.BEV_IMAGE) is not None
        assert isinstance(bus.latest(Topics.DETECTIONS), DetectionArrayMessage)


class TestILNode:
    def test_waits_for_image(self, bus, small_policy):
        node = ILNode(bus, small_policy)
        node.step(0.0)
        assert bus.latest(Topics.IL_COMMAND) is None

    def test_publishes_command_and_probabilities(self, bus, world, small_policy):
        PerceptionNode(bus, world).step(0.0)
        ILNode(bus, small_policy).step(0.0)
        command = bus.latest(Topics.IL_COMMAND)
        probabilities = bus.latest(Topics.IL_PROBABILITIES)
        assert isinstance(command, ControlCommandMessage)
        assert command.source == "il"
        assert isinstance(probabilities, ILProbabilitiesMessage)
        assert probabilities.probabilities.sum() == pytest.approx(1.0)


class TestCONode:
    def test_publishes_co_command(self, bus, world, easy_scenario, vehicle_params):
        expert = ExpertDriver(easy_scenario.lot, easy_scenario.obstacles, vehicle_params)
        path = expert.plan_reference(easy_scenario.start_pose)
        controller = COController(vehicle_params, horizon=6)
        controller.set_reference_path(path)
        PerceptionNode(bus, world).step(0.0)
        CONode(bus, controller, world).step(0.0)
        command = bus.latest(Topics.CO_COMMAND)
        assert isinstance(command, ControlCommandMessage)
        assert command.source == "co"


class TestHSANode:
    def test_publishes_status_after_probabilities(self, bus, world, small_policy):
        PerceptionNode(bus, world).step(0.0)
        ILNode(bus, small_policy).step(0.0)
        node = HSANode(bus, ICOILConfig(guard_frames=0), small_policy.action_space.num_classes)
        node.step(0.0)
        status = bus.latest(Topics.HSA_STATUS)
        assert isinstance(status, HSAStatusMessage)
        assert status.active_mode in ("il", "co")
        assert status.reading is not None

    def test_no_status_without_probabilities(self, bus):
        node = HSANode(bus, ICOILConfig())
        node.step(0.0)
        assert bus.latest(Topics.HSA_STATUS) is None


class TestCommandMuxNode:
    def test_selects_active_mode_command(self, bus):
        bus.publish(Topics.HSA_STATUS, HSAStatusMessage(stamp=0.0, active_mode="il"))
        bus.publish(
            Topics.IL_COMMAND, ControlCommandMessage(stamp=0.0, action=Action(0.3), source="il")
        )
        bus.publish(
            Topics.CO_COMMAND, ControlCommandMessage(stamp=0.0, action=Action(0.9), source="co")
        )
        CommandMuxNode(bus).step(0.0)
        command = bus.latest(Topics.CONTROL_COMMAND)
        assert command.source == "il"
        assert command.action.throttle == pytest.approx(0.3)

    def test_falls_back_to_other_mode(self, bus):
        bus.publish(Topics.HSA_STATUS, HSAStatusMessage(stamp=0.0, active_mode="il"))
        bus.publish(
            Topics.CO_COMMAND, ControlCommandMessage(stamp=0.0, action=Action(0.9), source="co")
        )
        CommandMuxNode(bus).step(0.0)
        assert bus.latest(Topics.CONTROL_COMMAND).source == "co"

    def test_no_output_without_any_command(self, bus):
        CommandMuxNode(bus).step(0.0)
        assert bus.latest(Topics.CONTROL_COMMAND) is None


class TestSimulatorBridgeNode:
    def test_applies_latest_command_and_publishes_state(self, bus, world):
        bus.publish(
            Topics.CONTROL_COMMAND,
            ControlCommandMessage(stamp=0.0, action=Action(throttle=1.0), source="co"),
        )
        node = SimulatorBridgeNode(bus, world)
        for step in range(5):
            node.step(step * 0.1)
        state_message = bus.latest(Topics.EGO_STATE)
        assert isinstance(state_message, EgoStateMessage)
        assert state_message.state.velocity > 0.0
        assert world.time == pytest.approx(0.5)

    def test_idles_without_command(self, bus, world):
        node = SimulatorBridgeNode(bus, world)
        node.step(0.0)
        assert world.state.velocity == pytest.approx(0.0)
