"""Cross-backend equivalence of the BatchExecutor.

The contract: identical specs produce bitwise-identical, identically-ordered
``EpisodeResult`` sequences (and numerically identical traces) on *every*
backend — worker pools and fleet scheduling merely buy scaling.  The
invariant is asserted fleet-wide through the episode trace hashes (see
``DETERMINISM.md``): one hash list per backend, all of which must be equal.
Specs cross the process boundary via their ``to_dict``/``from_dict``
round-trip, so these tests double as an end-to-end check of that
serialization path under real multiprocessing.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.api import BACKENDS, BatchExecutor, BatchSpec, ControllerRegistry
from repro.world.scenario import DifficultyLevel, SpawnMode


def small_batch(num_seeds: int = 6, max_steps: int = 8) -> BatchSpec:
    return BatchSpec(
        method="expert",
        seeds=tuple(range(num_seeds)),
        difficulties=(DifficultyLevel.EASY,),
        spawn_mode=SpawnMode.CLOSE,
        scenario_name="perpendicular-easy",
        max_steps=max_steps,
    )


class TestProcessBackend:
    def test_results_bitwise_identical_across_backends(self):
        """One invariant over every backend: equal trace-hash lists.

        Not a pairwise spot check — the per-episode ``trace_hash`` lists of
        all executor backends are compared at once, and the full results
        (which embed the hashes) must be equal too.
        """
        spec = small_batch()
        outcomes = {
            backend: BatchExecutor(
                backend=backend, max_workers=2, summary_stream=None
            ).run(spec)
            for backend in BACKENDS
        }
        hash_lists = {
            backend: [result.trace_hash for result in outcome.results]
            for backend, outcome in outcomes.items()
        }
        assert all(hashes and all(hashes) for hashes in hash_lists.values())
        assert len({tuple(hashes) for hashes in hash_lists.values()}) == 1, hash_lists
        assert len({outcome.summary.trace_digest for outcome in outcomes.values()}) == 1

        thread, process = outcomes["thread"], outcomes["process"]
        assert thread.results == process.results
        assert [r.seed for r in process.results] == list(spec.seeds)
        for thread_trace, process_trace in zip(thread.traces, process.traces):
            assert np.array_equal(thread_trace.positions, process_trace.positions)
            assert np.array_equal(thread_trace.steering, process_trace.steering)
            assert np.array_equal(thread_trace.velocities, process_trace.velocities)

    def test_process_backend_with_single_worker_falls_back_to_serial(self):
        spec = small_batch(num_seeds=2)
        serial = BatchExecutor(backend="process", max_workers=1, summary_stream=None).run(spec)
        thread = BatchExecutor(backend="thread", max_workers=1, summary_stream=None).run(spec)
        assert serial.results == thread.results

    def test_summary_reports_backend(self):
        stream = io.StringIO()
        BatchExecutor(backend="process", max_workers=2, summary_stream=stream).run(
            small_batch(num_seeds=2)
        )
        payload = json.loads(stream.getvalue().strip())
        assert payload["backend"] == "process"

    def test_bench_path_appends_summary_lines(self, tmp_path):
        bench = tmp_path / "BENCH_throughput.json"
        executor = BatchExecutor(
            backend="thread", max_workers=2, summary_stream=None, bench_path=bench
        )
        executor.run(small_batch(num_seeds=2))
        executor.run(small_batch(num_seeds=2))
        lines = bench.read_text().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            payload = json.loads(line)
            assert payload["event"] == "batch_summary"
            assert payload["episodes"] == 2

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            BatchExecutor(backend="fork-bomb")

    def test_custom_registry_rejected_on_process_backend(self):
        registry = ControllerRegistry()
        with pytest.raises(ValueError, match="default registry"):
            BatchExecutor(backend="process", registry=registry)

    def test_runtime_registered_method_fails_fast_on_process_backend(self):
        """Methods workers cannot resolve are rejected before any work runs."""
        from repro.api import ControlStep, EpisodeSpec, register_method
        from repro.vehicle.actions import Action

        def build_probe(context):
            class Controller:
                def step(self, state, obstacles, lot, time=0.0):
                    return ControlStep(action=Action.full_brake(), mode="probe")

            return Controller()

        register_method("process-only-probe", overwrite=True)(build_probe)
        register_method("process-only-probe-2", overwrite=True)(build_probe)

        executor = BatchExecutor(backend="process", max_workers=2, summary_stream=None)
        # Every unresolvable method is named in one error, not just the first.
        with pytest.raises(ValueError, match="registered in this process only") as excinfo:
            executor.run_specs(
                [
                    EpisodeSpec(method="process-only-probe", max_steps=2),
                    EpisodeSpec(method="process-only-probe-2", max_steps=2),
                    EpisodeSpec(method="process-only-probe", max_steps=2),
                ]
            )
        message = str(excinfo.value)
        assert "'process-only-probe'" in message
        assert "'process-only-probe-2'" in message
        # The thread backend still runs it.
        outcome = BatchExecutor(backend="thread", summary_stream=None).run_specs(
            [EpisodeSpec(method="process-only-probe", max_steps=2)]
        )
        assert outcome.results[0].num_steps == 2
