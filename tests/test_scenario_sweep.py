"""Smoke sweep: every registered method completes an episode on every scenario.

This is the CI scenario-sweep job: one short episode per (method, scenario
preset) pair, driven through :class:`~repro.api.specs.EpisodeSpec` and the
:class:`~repro.api.executor.BatchExecutor`, so a broken layout (or a layout
a controller cannot even start on) fails fast.  Episodes are capped at a few
dozen steps — the assertion is *completion* (the session runs to its cap or
a terminal state), not parking success.
"""

import json

import pytest

from repro.api import BatchExecutor, EpisodeSpec, default_registry
from repro.world import ScenarioConfig, SpawnMode, default_scenario_registry

SCENARIOS = default_scenario_registry().names()
METHODS = default_registry().names()


def _sweep_spec(method: str, scenario_name: str) -> EpisodeSpec:
    return EpisodeSpec(
        method=method,
        scenario=ScenarioConfig(
            scenario_name=scenario_name, spawn_mode=SpawnMode.CLOSE, seed=1
        ),
        time_limit=30.0,
        max_steps=25,
    )


def test_every_method_completes_every_scenario(small_policy):
    assert len(SCENARIOS) >= 5
    assert set(METHODS) >= {"icoil", "il", "co", "expert"}
    executor = BatchExecutor(il_policy=small_policy, summary_stream=None)
    for scenario_name in SCENARIOS:
        specs = [_sweep_spec(method, scenario_name) for method in METHODS]
        outcome = executor.run_specs(specs, method=f"sweep-{scenario_name}")
        assert len(outcome) == len(METHODS)
        for method, result in zip(METHODS, outcome):
            assert result.num_steps >= 1, f"{method} produced no steps on {scenario_name}"


def test_spec_round_trip_preserves_scenario_reference(small_policy):
    """Scenario name + layout params survive to_dict/from_dict and rebuild identically."""
    spec = EpisodeSpec(
        method="expert",
        scenario=ScenarioConfig(
            scenario_name="angled-cluttered",
            layout_params={"aisle_width": 7.5, "num_slots": 6, "goal_slot_index": 3},
            spawn_mode=SpawnMode.CLOSE,
            seed=4,
        ),
        time_limit=30.0,
        max_steps=20,
    )
    restored = EpisodeSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert restored == spec
    executor = BatchExecutor(il_policy=small_policy, summary_stream=None)
    first, second = executor.run_specs([spec, restored], method="round-trip")
    assert first == second


@pytest.mark.parametrize("scenario_name", SCENARIOS)
def test_expert_reference_path_exists(scenario_name, vehicle_params):
    """The scripted expert can produce a reference path on every layout."""
    from repro.il.expert import ExpertDriver
    from repro.world import build_scenario

    scenario = build_scenario(
        ScenarioConfig(scenario_name=scenario_name, spawn_mode=SpawnMode.CLOSE, seed=1)
    )
    expert = ExpertDriver(scenario.lot, scenario.obstacles, vehicle_params)
    path = expert.plan_reference(scenario.start_pose)
    assert path is not None and len(path.waypoints) > 5
    # Every reference ends with a reverse maneuver into the space.
    assert path.waypoints[-1].direction == -1
