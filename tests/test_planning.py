"""Tests for Reeds-Shepp curves, hybrid A*, waypoints and progress tracking."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.se2 import SE2
from repro.planning import HybridAStarPlanner, WaypointPath, Waypoint, shortest_reeds_shepp_path
from repro.planning.maneuvers import perpendicular_reverse_park
from repro.planning.progress import SegmentedPathFollower, split_into_segments
from repro.world.parking_lot import default_parking_lot

poses = st.tuples(
    st.floats(min_value=-15.0, max_value=15.0),
    st.floats(min_value=-15.0, max_value=15.0),
    st.floats(min_value=-math.pi, max_value=math.pi - 1e-6),
)


class TestReedsShepp:
    def test_straight_line_path(self):
        path = shortest_reeds_shepp_path(SE2(0, 0, 0), SE2(10, 0, 0), turning_radius=4.0)
        assert path is not None
        assert path.length == pytest.approx(10.0, abs=0.3)

    def test_path_reaches_goal(self):
        start = SE2(0, 0, 0)
        goal = SE2(6.0, 4.0, math.pi / 2)
        path = shortest_reeds_shepp_path(start, goal, turning_radius=4.0)
        assert path is not None
        end_pose = path.sample(start, spacing=0.2)[-1][0]
        assert end_pose.distance_to(goal) < 0.3

    @given(poses, poses)
    @settings(max_examples=30, deadline=None)
    def test_endpoint_accuracy_property(self, start_tuple, goal_tuple):
        start = SE2(*start_tuple)
        goal = SE2(*goal_tuple)
        path = shortest_reeds_shepp_path(start, goal, turning_radius=4.0)
        if path is None:
            return  # rare degenerate case; nothing to check
        end_pose = path.sample(start, spacing=0.25)[-1][0]
        assert end_pose.distance_to(goal) < 0.5

    def test_length_at_least_euclidean(self):
        start, goal = SE2(0, 0, 0), SE2(5, 5, 1.0)
        path = shortest_reeds_shepp_path(start, goal, turning_radius=4.0)
        assert path.length >= start.distance_to(goal) - 1e-6

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            shortest_reeds_shepp_path(SE2(0, 0, 0), SE2(1, 1, 0), turning_radius=0.0)

    def test_reverse_segments_for_backward_goal(self):
        # Goal directly behind the start with the same heading: the shortest
        # maneuver must contain at least one reverse segment.
        path = shortest_reeds_shepp_path(SE2(0, 0, 0), SE2(-4.0, 0.0, 0.0), turning_radius=4.0)
        assert any(segment.length < 0 for segment in path.segments)


class TestWaypointPath:
    def _straight_path(self):
        poses = [SE2(float(i), 0.0, 0.0) for i in range(11)]
        return WaypointPath.from_poses(poses)

    def test_length(self):
        assert self._straight_path().length == pytest.approx(10.0)

    def test_requires_two_waypoints(self):
        with pytest.raises(ValueError):
            WaypointPath([Waypoint(SE2(0, 0, 0))])

    def test_nearest_index(self):
        path = self._straight_path()
        assert path.nearest_index([3.4, 1.0]) == 3

    def test_interpolate_at(self):
        pose = self._straight_path().interpolate_at(2.5)
        assert pose.x == pytest.approx(2.5)

    def test_interpolate_clamps(self):
        path = self._straight_path()
        assert path.interpolate_at(-5.0).x == pytest.approx(0.0)
        assert path.interpolate_at(50.0).x == pytest.approx(10.0)

    def test_lookahead_targets_clamped_at_goal(self):
        path = self._straight_path()
        targets = path.lookahead_targets([9.5, 0.0], count=5)
        assert len(targets) == 5
        assert targets[-1].pose.x == pytest.approx(10.0)

    def test_resampled_preserves_endpoints(self):
        path = self._straight_path().resampled(0.3)
        assert path[0].pose.x == pytest.approx(0.0)
        assert path.goal.pose.x == pytest.approx(10.0)

    def test_straight_line_constructor(self):
        path = WaypointPath.straight_line(SE2(0, 0, 0), np.array([4.0, 3.0]), spacing=0.5)
        assert path.length == pytest.approx(5.0, abs=0.1)

    def test_remaining_length_decreases(self):
        path = self._straight_path()
        assert path.remaining_length([1.0, 0.0]) > path.remaining_length([8.0, 0.0])

    def test_direction_validation(self):
        with pytest.raises(ValueError):
            Waypoint(SE2(0, 0, 0), direction=2)


class TestManeuvers:
    def test_reverse_park_ends_at_goal(self):
        goal = SE2(32.0, 5.0, math.pi / 2)
        staging, waypoints = perpendicular_reverse_park(goal, aisle_heading=0.0, radius=5.0)
        assert waypoints[-1].pose.distance_to(goal) < 1e-6
        assert all(w.direction == -1 for w in waypoints)

    def test_staging_heading_matches_aisle(self):
        goal = SE2(32.0, 5.0, math.pi / 2)
        staging, _ = perpendicular_reverse_park(goal, aisle_heading=0.0, radius=5.0)
        assert abs(staging.theta) < 0.2

    def test_staging_offset_by_radius(self):
        goal = SE2(10.0, 0.0, math.pi / 2)
        staging, _ = perpendicular_reverse_park(goal, aisle_heading=0.0, radius=4.0)
        assert staging.distance_to(goal) == pytest.approx(4.0 * math.sqrt(2.0), rel=0.05)

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            perpendicular_reverse_park(SE2(0, 0, 0), radius=-1.0)

    def test_arc_rejects_goal_parallel_to_aisle(self):
        from repro.planning.maneuvers import reverse_park_arc

        with pytest.raises(ValueError, match="parallel_reverse_park"):
            reverse_park_arc(SE2(10.0, 2.0, 0.0), aisle_heading=0.0, radius=5.0)

    def test_angled_arc_ends_at_goal(self):
        from repro.planning.maneuvers import reverse_park_arc

        goal = SE2(28.0, 3.0, math.radians(60.0))
        staging, waypoints = reverse_park_arc(goal, aisle_heading=0.0, radius=9.0)
        assert abs(staging.theta) < 1e-9
        assert waypoints[-1].pose.distance_to(goal) < 1e-6
        assert all(w.direction == -1 for w in waypoints)

    def test_parallel_s_curve_both_sides(self):
        from repro.planning.maneuvers import parallel_reverse_park

        goal = SE2(27.0, 1.65, 0.0)
        staging, waypoints = parallel_reverse_park(goal, radius=5.0, lateral_offset=4.0, side=1)
        assert staging.y > goal.y and staging.x > goal.x
        assert waypoints[-1].pose.distance_to(goal) < 1e-9
        # Mirrored geometry: west-facing goal with the aisle on its right.
        mirrored_goal = SE2(27.0, 10.0, math.pi)
        staging_m, waypoints_m = parallel_reverse_park(
            mirrored_goal, aisle_heading=math.pi, radius=5.0, lateral_offset=4.0, side=-1
        )
        assert staging_m.y > mirrored_goal.y and staging_m.x < mirrored_goal.x
        assert waypoints_m[-1].pose.distance_to(mirrored_goal) < 1e-9
        assert all(w.direction == -1 for w in waypoints_m)

    def test_parallel_rejects_bad_side_and_offset(self):
        from repro.planning.maneuvers import parallel_reverse_park

        with pytest.raises(ValueError):
            parallel_reverse_park(SE2(0, 0, 0), side=2)
        with pytest.raises(ValueError):
            parallel_reverse_park(SE2(0, 0, 0), radius=3.0, lateral_offset=7.0)


class TestSegmentedFollower:
    def _two_segment_path(self):
        forward = [Waypoint(SE2(float(i), 0.0, 0.0), 1) for i in range(6)]
        reverse = [Waypoint(SE2(5.0 - 0.5 * i, 0.0, 0.0), -1) for i in range(1, 7)]
        return WaypointPath(forward + reverse)

    def test_split_into_segments(self):
        segments = split_into_segments(self._two_segment_path())
        assert len(segments) == 2
        assert segments[0].direction == 1
        assert segments[1].direction == -1

    def test_follower_starts_on_first_segment(self):
        follower = SegmentedPathFollower(self._two_segment_path())
        follower.update([0.0, 0.0])
        assert follower.current_direction == 1
        assert not follower.on_final_segment

    def test_follower_advances_at_segment_end(self):
        follower = SegmentedPathFollower(self._two_segment_path())
        follower.update([5.0, 0.0])
        assert follower.current_direction == -1
        assert follower.on_final_segment

    def test_follower_does_not_advance_early(self):
        follower = SegmentedPathFollower(self._two_segment_path())
        follower.update([2.0, 0.0])
        assert follower.current_direction == 1

    def test_reference_poses_clamped_to_segment(self):
        follower = SegmentedPathFollower(self._two_segment_path())
        follower.update([3.0, 0.0])
        positions, headings, direction = follower.reference_poses([3.0, 0.0], spacing=1.0, count=8)
        assert direction == 1
        assert positions[:, 0].max() <= 5.0 + 1e-9

    def test_reset(self):
        follower = SegmentedPathFollower(self._two_segment_path())
        follower.update([5.0, 0.0])
        follower.reset()
        assert follower.current_direction == 1


class TestHybridAStar:
    def test_plans_to_free_space_goal(self, vehicle_params):
        lot = default_parking_lot()
        planner = HybridAStarPlanner(vehicle_params, max_expansions=4000)
        start = SE2(5.0, 11.0, 0.0)
        goal = SE2(20.0, 11.0, 0.0)
        result = planner.plan(start, goal, [], lot)
        assert result.success
        assert result.path is not None
        assert result.path.goal.pose.distance_to(goal) < 1.0

    def test_path_avoids_obstacles(self, vehicle_params, easy_scenario):
        planner = HybridAStarPlanner(vehicle_params, max_expansions=6000)
        lot = easy_scenario.lot
        staging = SE2(37.0, 10.0, 0.0)
        result = planner.plan(easy_scenario.start_pose, staging, easy_scenario.static_obstacles, lot)
        assert result.success
        from repro.geometry.collision import distance_between

        for waypoint in result.path.waypoints:
            # Use the planner's own footprint helper for the clearance check.
            footprint = planner._footprint(waypoint.pose)
            for obstacle in easy_scenario.static_obstacles:
                assert distance_between(footprint, obstacle.box) >= 0.0

    def test_start_in_collision_fails_fast(self, vehicle_params, easy_scenario):
        planner = HybridAStarPlanner(vehicle_params)
        blocked_start = SE2(28.5, 5.0, 0.0)  # on top of a parked car
        result = planner.plan(
            blocked_start, SE2(37.0, 10.0, 0.0), easy_scenario.static_obstacles, easy_scenario.lot
        )
        assert not result.success
        assert result.expanded_nodes == 0

    def test_invalid_configuration(self, vehicle_params):
        with pytest.raises(ValueError):
            HybridAStarPlanner(vehicle_params, num_steer_primitives=1)
        with pytest.raises(ValueError):
            HybridAStarPlanner(vehicle_params, step_size=0.0)
