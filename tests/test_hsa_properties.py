"""Property-based tests on the HSA invariants (Eq. 1, 7, 8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HSAModel, ICOILConfig
from repro.core.hsa import scenario_complexity, scenario_uncertainty

probability_vectors = st.lists(
    st.floats(min_value=1e-3, max_value=1.0), min_size=2, max_size=30
).map(lambda values: np.array(values) / np.sum(values))

distance_lists = st.lists(st.floats(min_value=0.1, max_value=40.0), min_size=0, max_size=8)


@given(probability_vectors)
@settings(max_examples=60, deadline=None)
def test_uncertainty_nonnegative_and_bounded(probabilities):
    entropy = scenario_uncertainty(probabilities)
    assert 0.0 <= entropy <= np.log(probabilities.size) + 1e-9


@given(distance_lists)
@settings(max_examples=60, deadline=None)
def test_complexity_at_least_obstacle_free_baseline(distances):
    baseline = scenario_complexity([], horizon=10, action_dimension=2, danger_distance=3.0)
    value = scenario_complexity(distances, horizon=10, action_dimension=2, danger_distance=3.0)
    assert value >= baseline - 1e-9


@given(distance_lists, st.floats(min_value=0.5, max_value=10.0))
@settings(max_examples=40, deadline=None)
def test_complexity_monotone_in_obstacle_count(distances, extra_distance):
    base = scenario_complexity(distances, horizon=10, action_dimension=2, danger_distance=3.0)
    more = scenario_complexity(
        list(distances) + [extra_distance], horizon=10, action_dimension=2, danger_distance=3.0
    )
    assert more >= base


@given(probability_vectors, distance_lists)
@settings(max_examples=40, deadline=None)
def test_hsa_reading_consistent_with_threshold(probabilities, distances):
    config = ICOILConfig(window_size=1, switch_threshold=0.35)
    model = HSAModel(config, num_classes=probabilities.size)
    reading = model.update(probabilities, distances)
    assert reading.use_co == (reading.score > config.switch_threshold)
    assert reading.normalized_uncertainty == pytest.approx(
        reading.average_uncertainty / np.log(probabilities.size)
    )


fixed_size_probability_vectors = st.lists(
    st.floats(min_value=1e-3, max_value=1.0), min_size=10, max_size=10
).map(lambda values: np.array(values) / np.sum(values))


@given(st.lists(fixed_size_probability_vectors, min_size=2, max_size=6))
@settings(max_examples=30, deadline=None)
def test_window_average_matches_manual_mean(probability_sequence):
    config = ICOILConfig(window_size=len(probability_sequence))
    model = HSAModel(config, num_classes=10)
    entropies = []
    reading = None
    for probabilities in probability_sequence:
        entropies.append(scenario_uncertainty(probabilities))
        reading = model.update(probabilities, [])
    assert reading.average_uncertainty == pytest.approx(np.mean(entropies))
