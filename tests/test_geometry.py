"""Unit and property tests for the geometry substrate."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    SE2,
    AxisAlignedBox,
    Circle,
    ConvexPolygon,
    OrientedBox,
    angle_diff,
    distance_between,
    normalize_angle,
    point_in_polygon,
    polygon_polygon_collision,
    shapes_collide,
    unwrap_angles,
)
from repro.geometry.collision import (
    closest_point_on_segment,
    point_polygon_distance,
    signed_distance_circle_polygon,
)

angles = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)
coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


class TestAngles:
    def test_normalize_angle_in_range(self):
        assert normalize_angle(3 * math.pi) == pytest.approx(-math.pi)
        assert -math.pi <= normalize_angle(123.456) < math.pi

    def test_normalize_identity_for_small_angles(self):
        assert normalize_angle(0.5) == pytest.approx(0.5)
        assert normalize_angle(-1.2) == pytest.approx(-1.2)

    @given(angles)
    @settings(max_examples=50, deadline=None)
    def test_normalize_angle_always_in_range(self, theta):
        wrapped = normalize_angle(theta)
        assert -math.pi <= wrapped < math.pi

    @given(angles, angles)
    @settings(max_examples=50, deadline=None)
    def test_angle_diff_is_shortest_arc(self, a, b):
        diff = angle_diff(a, b)
        assert -math.pi <= diff < math.pi
        assert normalize_angle(b + diff) == pytest.approx(normalize_angle(a), abs=1e-9)

    def test_unwrap_angles_continuous(self):
        raw = [0.0, 3.0, -3.0, 3.1]
        unwrapped = unwrap_angles(raw)
        deltas = np.abs(np.diff(unwrapped))
        assert np.all(deltas <= math.pi + 1e-9)

    def test_unwrap_empty(self):
        assert unwrap_angles([]) == []


class TestSE2:
    def test_compose_with_identity(self):
        pose = SE2(1.0, 2.0, 0.5)
        assert pose.compose(SE2.identity()).as_array() == pytest.approx(pose.as_array())

    def test_inverse_roundtrip(self):
        pose = SE2(3.0, -1.0, 1.2)
        identity = pose.compose(pose.inverse())
        assert identity.x == pytest.approx(0.0, abs=1e-12)
        assert identity.y == pytest.approx(0.0, abs=1e-12)
        assert identity.theta == pytest.approx(0.0, abs=1e-12)

    @given(coords, coords, angles, coords, coords)
    @settings(max_examples=50, deadline=None)
    def test_transform_point_roundtrip(self, x, y, theta, px, py):
        pose = SE2(x, y, theta)
        point = np.array([px, py])
        recovered = pose.inverse_transform_point(pose.transform_point(point))
        assert recovered == pytest.approx(point, abs=1e-6)

    def test_transform_points_matches_single(self):
        pose = SE2(1.0, -2.0, 0.7)
        points = np.array([[0.0, 0.0], [1.0, 1.0], [-2.0, 3.0]])
        batch = pose.transform_points(points)
        for single, expected in zip(points, batch):
            assert pose.transform_point(single) == pytest.approx(expected)

    def test_relative_to(self):
        a = SE2(1.0, 0.0, 0.0)
        b = SE2(2.0, 1.0, math.pi / 2)
        rel = b.relative_to(a)
        assert rel.x == pytest.approx(1.0)
        assert rel.y == pytest.approx(1.0)
        assert rel.theta == pytest.approx(math.pi / 2)

    def test_interpolate_endpoints(self):
        a = SE2(0.0, 0.0, 0.0)
        b = SE2(2.0, 2.0, 1.0)
        assert a.interpolate(b, 0.0).as_array() == pytest.approx(a.as_array())
        assert a.interpolate(b, 1.0).as_array() == pytest.approx(b.as_array())

    def test_from_array_validates_length(self):
        with pytest.raises(ValueError):
            SE2.from_array(np.array([1.0, 2.0]))

    def test_heading_vector_unit_norm(self):
        assert np.linalg.norm(SE2(0, 0, 0.73).heading_vector()) == pytest.approx(1.0)


class TestShapes:
    def test_circle_contains(self):
        circle = Circle(0.0, 0.0, 2.0)
        assert circle.contains([1.0, 1.0])
        assert not circle.contains([2.5, 0.0])

    def test_circle_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Circle(0.0, 0.0, -1.0)

    def test_aabb_from_center(self):
        box = AxisAlignedBox.from_center(1.0, 2.0, 4.0, 2.0)
        assert box.min_x == pytest.approx(-1.0)
        assert box.max_y == pytest.approx(3.0)
        assert box.contains([0.0, 2.5])

    def test_aabb_invalid_corners_rejected(self):
        with pytest.raises(ValueError):
            AxisAlignedBox(1.0, 0.0, 0.0, 1.0)

    def test_aabb_sample_point_inside(self, rng):
        box = AxisAlignedBox(0.0, 0.0, 5.0, 3.0)
        for _ in range(20):
            assert box.contains(box.sample_point(rng))

    def test_oriented_box_vertices_and_contains(self):
        box = OrientedBox(0.0, 0.0, 4.0, 2.0, math.pi / 2)
        vertices = box.vertices()
        assert vertices.shape == (4, 2)
        # Rotated by 90 degrees: long axis now along y.
        assert box.contains([0.0, 1.9])
        assert not box.contains([1.9, 0.0])

    def test_oriented_box_inflated(self):
        box = OrientedBox(0.0, 0.0, 4.0, 2.0, 0.0)
        grown = box.inflated(0.5)
        assert grown.length == pytest.approx(5.0)
        assert grown.width == pytest.approx(3.0)

    def test_oriented_box_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            OrientedBox(0, 0, 0.0, 1.0, 0.0)

    def test_polygon_needs_three_vertices(self):
        with pytest.raises(ValueError):
            ConvexPolygon(((0.0, 0.0), (1.0, 0.0)))

    def test_polygon_winding_normalised(self):
        clockwise = ConvexPolygon(((0.0, 0.0), (0.0, 1.0), (1.0, 1.0), (1.0, 0.0)))
        assert clockwise.area() == pytest.approx(1.0)
        assert clockwise.contains([0.5, 0.5])

    def test_polygon_center_and_radius(self):
        polygon = AxisAlignedBox(0.0, 0.0, 2.0, 2.0).to_polygon()
        assert polygon.center == pytest.approx([1.0, 1.0])
        assert polygon.bounding_radius == pytest.approx(math.sqrt(2.0))


class TestCollision:
    def test_closest_point_on_segment(self):
        point = closest_point_on_segment([0.0, 1.0], [-1.0, 0.0], [1.0, 0.0])
        assert point == pytest.approx([0.0, 0.0])

    def test_closest_point_clamps_to_endpoints(self):
        point = closest_point_on_segment([5.0, 5.0], [-1.0, 0.0], [1.0, 0.0])
        assert point == pytest.approx([1.0, 0.0])

    def test_point_in_polygon(self):
        polygon = AxisAlignedBox(0.0, 0.0, 2.0, 2.0).to_polygon()
        assert point_in_polygon([1.0, 1.0], polygon)
        assert not point_in_polygon([3.0, 1.0], polygon)

    def test_point_polygon_distance(self):
        polygon = AxisAlignedBox(0.0, 0.0, 2.0, 2.0).to_polygon()
        assert point_polygon_distance([1.0, 1.0], polygon) == 0.0
        assert point_polygon_distance([4.0, 1.0], polygon) == pytest.approx(2.0)

    def test_polygon_polygon_collision_cases(self):
        a = AxisAlignedBox(0.0, 0.0, 2.0, 2.0).to_polygon()
        b = AxisAlignedBox(1.0, 1.0, 3.0, 3.0).to_polygon()
        c = AxisAlignedBox(5.0, 5.0, 6.0, 6.0).to_polygon()
        assert polygon_polygon_collision(a, b)
        assert not polygon_polygon_collision(a, c)

    def test_rotated_boxes_near_miss(self):
        a = OrientedBox(0.0, 0.0, 4.0, 2.0, 0.0).to_polygon()
        b = OrientedBox(0.0, 3.3, 4.0, 2.0, math.pi / 4).to_polygon()
        assert not polygon_polygon_collision(a, b)

    def test_signed_distance_circle_polygon(self):
        polygon = AxisAlignedBox(0.0, 0.0, 2.0, 2.0).to_polygon()
        inside = signed_distance_circle_polygon(Circle(1.0, 1.0, 0.5), polygon)
        outside = signed_distance_circle_polygon(Circle(4.0, 1.0, 0.5), polygon)
        assert inside < 0.0
        assert outside == pytest.approx(1.5)

    def test_shapes_collide_dispatch(self):
        circle = Circle(0.0, 0.0, 1.0)
        box = OrientedBox(1.5, 0.0, 2.0, 2.0, 0.0)
        far_circle = Circle(10.0, 0.0, 1.0)
        assert shapes_collide(circle, box)
        assert shapes_collide(box, circle)
        assert not shapes_collide(circle, far_circle)

    def test_distance_between_symmetry(self):
        a = OrientedBox(0.0, 0.0, 2.0, 1.0, 0.3)
        b = OrientedBox(5.0, 1.0, 2.0, 1.0, -0.4)
        assert distance_between(a, b) == pytest.approx(distance_between(b, a))

    @given(coords, coords, st.floats(min_value=0.1, max_value=5.0), coords, coords)
    @settings(max_examples=40, deadline=None)
    def test_distance_nonnegative(self, x, y, r, bx, by):
        circle = Circle(x, y, r)
        box = OrientedBox(bx, by, 2.0, 1.0, 0.0)
        assert distance_between(circle, box) >= 0.0

    def test_overlapping_shapes_have_zero_distance(self):
        a = OrientedBox(0.0, 0.0, 2.0, 2.0, 0.0)
        b = OrientedBox(0.5, 0.5, 2.0, 2.0, 0.5)
        assert shapes_collide(a, b)
        assert distance_between(a, b) == 0.0


class TestVectorizedDistanceParity:
    """The broadcast polygon distance must be bit-identical to the scalar loop."""

    @staticmethod
    def scalar_polygon_distance(a, b):
        """The historical per-pair implementation, kept as the reference."""
        from repro.geometry.collision import polygon_polygon_collision

        if polygon_polygon_collision(a, b):
            return 0.0
        best = math.inf
        for polygon, other in ((a, b), (b, a)):
            vertices = polygon.vertices()
            count = vertices.shape[0]
            for index in range(count):
                start = vertices[index]
                end = vertices[(index + 1) % count]
                for vertex in other.vertices():
                    closest = closest_point_on_segment(vertex, start, end)
                    best = min(best, float(np.hypot(*(vertex - closest))))
        return best

    def test_random_polygon_pairs_match_bitwise(self):
        from repro.geometry.collision import polygon_polygon_distance
        from repro.geometry.shapes import OrientedBox

        rng = np.random.default_rng(2024)
        checked_disjoint = 0
        for _ in range(60):
            a = OrientedBox(*rng.uniform(-6, 6, 2), *rng.uniform(0.4, 3.0, 2), rng.uniform(-math.pi, math.pi))
            b = OrientedBox(*rng.uniform(-6, 6, 2), *rng.uniform(0.4, 3.0, 2), rng.uniform(-math.pi, math.pi))
            pa, pb = a.to_polygon(), b.to_polygon()
            expected = self.scalar_polygon_distance(pa, pb)
            actual = polygon_polygon_distance(pa, pb)
            assert actual == expected  # exact equality, not approx
            checked_disjoint += expected > 0.0
        assert checked_disjoint > 10  # the sweep exercised the distance path

    def test_degenerate_edge_matches_scalar(self):
        from repro.geometry.collision import polygon_polygon_distance
        from repro.geometry.shapes import ConvexPolygon

        # A degenerate "polygon" with a zero-length edge exercises the
        # clamped division fallback in the broadcast helper.
        sliver = ConvexPolygon(np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 0.0]]))
        box = ConvexPolygon(np.array([[3.0, -1.0], [4.0, -1.0], [4.0, 1.0], [3.0, 1.0]]))
        expected = self.scalar_polygon_distance(sliver, box)
        assert polygon_polygon_distance(sliver, box) == expected
