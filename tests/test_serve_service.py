"""The asyncio session service: streaming, isolation, replay, parity."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.api import EpisodeSpec
from repro.api.events import STEP_TOPIC
from repro.api.session import run_episode_spec
from repro.middleware import MessageBus
from repro.serve import ServeApp
from repro.world.scenario import ScenarioConfig


def quick_spec(seed: int = 5, max_steps: int = 10) -> EpisodeSpec:
    return EpisodeSpec(
        method="expert",
        scenario=ScenarioConfig(scenario_name="perpendicular-easy", seed=seed),
        max_steps=max_steps,
    )


def serve(coroutine_factory):
    """Run an async test body inside a fresh event loop."""
    return asyncio.run(coroutine_factory())


class TestStreaming:
    def test_stream_matches_session_outcome(self):
        async def body():
            spec = quick_spec()
            reference = run_episode_spec(spec)
            async with ServeApp(max_concurrency=2) as app:
                handle = app.submit(spec)
                streamed = [event async for event in handle.steps()]
                outcome = await handle.outcome()
            assert len(streamed) == outcome.result.num_steps
            assert [event.step_index for event in streamed] == list(range(len(streamed)))
            assert outcome.result == reference.result
            assert np.array_equal(outcome.trace.positions, reference.trace.positions)
            assert outcome.events == reference.events

        serve(lambda: body())

    def test_outcome_resolves_without_draining_the_stream(self):
        async def body():
            async with ServeApp(max_concurrency=1) as app:
                handle = app.submit(quick_spec())
                outcome = await handle.outcome()
            assert outcome.result.num_steps > 0

        serve(lambda: body())

    def test_concurrent_sessions_are_scope_isolated(self):
        async def body():
            bus = MessageBus()
            async with ServeApp(max_concurrency=2, bus=bus) as app:
                first = app.submit(quick_spec(seed=5), client_id="alpha")
                second = app.submit(quick_spec(seed=6), client_id="beta")
                outcome_a = await first.outcome()
                outcome_b = await second.outcome()
            assert first.scope != second.scope
            assert first.scope.startswith("client/alpha/")
            assert second.scope.startswith("client/beta/")
            # Each session's steps land only on its own scoped topic.
            assert bus.publish_count(first.step_topic) == outcome_a.result.num_steps
            assert bus.publish_count(second.step_topic) == outcome_b.result.num_steps
            assert bus.publish_count(STEP_TOPIC) == 0
            assert bus.publish_count(first.episode_topic) == 1

        serve(lambda: body())


class TestReplay:
    def test_repeated_spec_replays_cached_stream(self):
        async def body():
            bus = MessageBus()
            spec = quick_spec(seed=9)
            async with ServeApp(max_concurrency=1, bus=bus) as app:
                live = app.submit(spec, client_id="x")
                live_events = [event async for event in live.steps()]
                live_outcome = await live.outcome()

                replay = app.submit(spec, client_id="y")
                replay_events = [event async for event in replay.steps()]
                replay_outcome = await replay.outcome()

            assert not live.from_cache
            assert replay.from_cache
            assert replay_events == live_events
            assert replay_outcome.result == live_outcome.result
            assert np.array_equal(
                replay_outcome.trace.positions, live_outcome.trace.positions
            )
            # The replay re-publishes on its own scope: same counts as live.
            assert bus.publish_count(replay.step_topic) == len(live_events)
            assert bus.publish_count(replay.episode_topic) == 1
            stats = app.stats()
            assert stats["result_cache_hits"] == 1
            assert stats["cache_hit_rate"] == 0.5

        serve(lambda: body())

    def test_reuse_disabled_always_recomputes(self):
        async def body():
            spec = quick_spec(seed=4)
            async with ServeApp(max_concurrency=1, reuse_results=False) as app:
                first = app.submit(spec)
                await first.outcome()
                second = app.submit(spec)
                await second.outcome()
                assert not second.from_cache
                assert app.stats()["result_cache_hits"] == 0

        serve(lambda: body())


class TestLifecycle:
    def test_submit_requires_open_app(self):
        async def body():
            app = ServeApp()
            with pytest.raises(RuntimeError, match="not open"):
                app.submit(quick_spec())

        serve(lambda: body())

    def test_run_session_convenience_wrapper(self):
        async def body():
            spec = quick_spec(seed=12)
            reference = run_episode_spec(spec)
            async with ServeApp(max_concurrency=2) as app:
                outcome = await app.run_session(spec, client_id="solo")
            assert outcome.result == reference.result
            stats = app.stats()
            assert stats["sessions_started"] == stats["sessions_completed"] == 1

        serve(lambda: body())

    def test_invalid_concurrency_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            ServeApp(max_concurrency=0)

    def test_provider_installed_only_while_open(self):
        from repro.spatial import current_spatial_provider

        async def body():
            before = current_spatial_provider()
            async with ServeApp() as app:
                assert current_spatial_provider() is app._provider
            assert current_spatial_provider() is before

        serve(lambda: body())
