"""Tests for the space-time reservation layer (repro.planning.reservation).

Two suites:

* **Derived safety margins** — the yield/dwell/maneuver footprint margins
  are derived from the time layer's raster resolution instead of the old
  hard-coded ``0.1``; this pins the derived values (bit-for-bit at the
  default 0.4 m resolution) on every registered lot preset so a resolution
  or derivation change cannot slip through silently.
* **Hypothesis invariants** — machine-checked contracts the planners rely
  on: answers are invariant to reservation insertion/publish order, the
  batched broad-phase clearance bound is conservative with respect to the
  exact SAT narrow phase, and serialization round-trips byte-identically.

The property suite runs under the same fixed, derandomized profile as
``test_spatial_properties.py``; set ``HYPOTHESIS_PROFILE=dev`` locally for
fresh random exploration.
"""

from __future__ import annotations

import json
import math
import os

import numpy as np
import pytest

try:
    from hypothesis import given, settings, strategies as st
except ImportError:  # pragma: no cover - exercised only on minimal installs
    pytest.skip("hypothesis is not installed", allow_module_level=True)

from repro.api import ControllerContext, TimeLayerSpec
from repro.geometry.se2 import SE2
from repro.planning.reservation import (
    Reservation,
    ReservationLedger,
    ReservationTable,
)
from repro.vehicle.params import VehicleParams
from repro.world.scenario import (
    DifficultyLevel,
    ScenarioConfig,
    SpawnMode,
    build_scenario,
)

settings.register_profile("ci", derandomize=True, max_examples=25, deadline=None)
settings.register_profile("dev", max_examples=50, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


# ---------------------------------------------------------------------------
# Derived safety margins (satellite: the former hard-coded margin=0.1)
# ---------------------------------------------------------------------------
PRESETS = (
    "perpendicular-easy",
    "perpendicular-hard",
    "parallel-easy",
    "parallel-hard",
    "angled-easy",
    "angled-cluttered",
    "dead-end-normal",
    "multi-ego-2",
)


def preset_table(name: str) -> ReservationTable:
    """The reservation table a session over ``name`` would build."""
    config = ScenarioConfig(
        scenario_name=name,
        difficulty=DifficultyLevel.NORMAL,
        spawn_mode=SpawnMode.CLOSE,
        seed=3,
        num_dynamic_obstacles=1,
    )
    context = ControllerContext(
        build_scenario(config), time_layer=TimeLayerSpec(enabled=True)
    )
    table = context.reservations
    assert table is not None and table.timegrid is not None
    return table


class TestDerivedMargins:
    """The margins track the time layer's resolution, not a constant."""

    @pytest.mark.parametrize("name", PRESETS)
    def test_margins_pinned_on_preset(self, name):
        """Every preset grid derives the historical constants bit-for-bit."""
        table = preset_table(name)
        assert table.resolution == 0.4
        assert table.yield_margin == 0.1
        assert table.dwell_margin == 0.05
        assert table.maneuver_margin == 1.5 * 0.1

    @pytest.mark.parametrize("name", PRESETS)
    def test_margin_derivation_chain(self, name):
        """yield = resolution/4, dwell = yield/2, maneuver = 1.5 * yield."""
        table = preset_table(name)
        assert table.yield_margin == table.resolution / 4.0
        assert table.dwell_margin == table.yield_margin / 2.0
        assert table.maneuver_margin == 1.5 * table.yield_margin
        # The margin is half the raster's quantization slack scaled into a
        # footprint inflation; it must stay strictly inside one cell.
        assert 0.0 < table.yield_margin < table.resolution

    def test_margins_scale_with_resolution(self):
        """A coarser raster widens the margins proportionally."""
        config = ScenarioConfig(
            scenario_name="perpendicular-easy",
            difficulty=DifficultyLevel.NORMAL,
            spawn_mode=SpawnMode.CLOSE,
            seed=3,
            num_dynamic_obstacles=1,
        )
        context = ControllerContext(
            build_scenario(config),
            time_layer=TimeLayerSpec(enabled=True, resolution=0.8),
        )
        table = context.reservations
        assert table.resolution == 0.8
        assert table.yield_margin == 0.2
        assert table.dwell_margin == 0.1
        assert table.maneuver_margin == 1.5 * 0.2

    def test_gridless_table_keeps_default_margins(self):
        """With no grid the table falls back to the default 0.4 m raster."""
        table = ReservationTable(None, VehicleParams())
        assert table.resolution == 0.4
        assert table.yield_margin == 0.1
        assert table.dwell_margin == 0.05
        assert table.maneuver_margin == 1.5 * 0.1


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------
@st.composite
def reservation_records(draw, owner: str, priority: int) -> Reservation:
    """A finite-float reservation on a short timed polyline."""
    count = draw(st.integers(1, 4))
    poses = tuple(
        (
            draw(st.floats(0.0, 40.0)),
            draw(st.floats(0.0, 20.0)),
            draw(st.floats(-math.pi, math.pi)),
        )
        for _ in range(count)
    )
    start = draw(st.floats(0.0, 10.0))
    gaps = [draw(st.floats(0.0, 4.0)) for _ in range(count - 1)]
    times = [start]
    for gap in gaps:
        times.append(times[-1] + gap)
    return Reservation(
        owner=owner,
        priority=priority,
        poses=poses,
        times=tuple(times),
        length=draw(st.floats(1.0, 5.0)),
        width=draw(st.floats(0.8, 2.5)),
        speed=draw(st.floats(0.0, 2.0)),
        kind=draw(st.sampled_from(["ego", "patrol"])),
    )


@st.composite
def reservation_sets(draw, count_min=1, count_max=4):
    count = draw(st.integers(count_min, count_max))
    return [
        draw(reservation_records(owner=f"ego-{index}", priority=index))
        for index in range(count)
    ]


@st.composite
def pose_schedules(draw, count_min=1, count_max=6):
    count = draw(st.integers(count_min, count_max))
    poses = [
        SE2(
            draw(st.floats(-5.0, 45.0)),
            draw(st.floats(-5.0, 25.0)),
            draw(st.floats(-math.pi, math.pi)),
        )
        for _ in range(count)
    ]
    times = sorted(draw(st.floats(0.0, 30.0)) for _ in range(count))
    return poses, times


# ---------------------------------------------------------------------------
# Property: insertion / publish order never changes an answer
# ---------------------------------------------------------------------------
class TestOrderInvariance:
    @given(entries=reservation_sets(count_min=2), data=st.data())
    def test_table_add_order_is_irrelevant(self, entries, data):
        shuffled = data.draw(st.permutations(entries))
        forward, backward = ReservationTable(), ReservationTable()
        for entry in entries:
            forward.add(entry)
        for entry in shuffled:
            backward.add(entry)
        assert forward.active() == backward.active()

    @given(entries=reservation_sets(count_min=2), data=st.data())
    def test_ledger_publish_order_is_irrelevant(self, entries, data):
        shuffled = data.draw(st.permutations(entries))
        first, second = ReservationLedger(), ReservationLedger()
        for entry in entries:
            first.publish(entry)
        for entry in shuffled:
            second.publish(entry)
        assert first.reservations() == second.reservations()

    @given(
        entries=reservation_sets(count_min=2),
        schedule=pose_schedules(),
        data=st.data(),
    )
    def test_conflict_answers_invariant_under_order(self, entries, schedule, data):
        """Batched bounds and the two-phase answer are bitwise order-free."""
        shuffled = data.draw(st.permutations(entries))
        forward, backward = ReservationTable(), ReservationTable()
        for entry in entries:
            forward.add(entry)
        for entry in shuffled:
            backward.add(entry)
        poses, times = schedule
        pose_array = np.array([[p.x, p.y, p.theta] for p in poses])
        bounds_a = forward.pose_clearance_at(pose_array, times, margin=0.1)
        bounds_b = backward.pose_clearance_at(pose_array, times, margin=0.1)
        assert np.array_equal(bounds_a, bounds_b)
        assert forward.conflicts_at(poses, times, margin=0.1) == backward.conflicts_at(
            poses, times, margin=0.1
        )

    @given(entries=reservation_sets())
    def test_republish_replaces_not_accumulates(self, entries):
        ledger = ReservationLedger()
        for entry in entries:
            ledger.publish(entry)
            ledger.publish(entry)
        assert len(ledger.reservations()) == len(entries)


# ---------------------------------------------------------------------------
# Property: the broad phase is conservative w.r.t. the exact SAT phase
# ---------------------------------------------------------------------------
class TestConservatism:
    @given(entries=reservation_sets(), schedule=pose_schedules())
    def test_positive_bound_implies_no_exact_conflict(self, entries, schedule):
        """A strictly positive clearance bound must prove SAT-clearance."""
        table = ReservationTable()
        for entry in entries:
            table.add(entry)
        poses, times = schedule
        pose_array = np.array([[p.x, p.y, p.theta] for p in poses])
        bounds = table.pose_clearance_at(pose_array, times, margin=0.1)
        for pose, time, bound in zip(poses, times, bounds):
            if bound > 0.0:
                assert not table.pose_conflicts(pose, float(time), margin=0.1)

    @given(entries=reservation_sets(), schedule=pose_schedules())
    def test_two_phase_clear_verdict_agrees_with_exact(self, entries, schedule):
        """conflicts_at == False implies the exact phase is clear everywhere."""
        table = ReservationTable()
        for entry in entries:
            table.add(entry)
        poses, times = schedule
        if not table.conflicts_at(poses, times, margin=0.1):
            for pose, time in zip(poses, times):
                assert not table.pose_conflicts(pose, float(time), margin=0.1)

    @given(entries=reservation_sets(count_min=1, count_max=2))
    def test_reserved_pose_itself_is_never_clear(self, entries):
        """Sitting exactly on a held reservation pose must conflict.

        The ends are the unambiguous probes: the body holds its first pose
        before ``times[0]`` and its last pose forever after ``times[-1]``
        (interior stamps may repeat, making the pose there ambiguous).
        """
        table = ReservationTable(None, VehicleParams())
        for entry in entries:
            table.add(entry)
        offset = table.vehicle_params.center_offset
        for entry in entries:
            probes = [
                (entry.poses[0], entry.times[0] - 1.0),
                (entry.poses[-1], entry.times[-1] + 1.0),
            ]
            for (x, y, theta), time in probes:
                # A rear-axle pose whose body centre lands on the
                # reservation centre overlaps it by construction.
                pose = SE2(
                    x - offset * math.cos(theta),
                    y - offset * math.sin(theta),
                    theta,
                )
                bound = float(
                    table.pose_clearance_at(
                        np.array([[pose.x, pose.y, pose.theta]]),
                        [time],
                        margin=0.0,
                    )[0]
                )
                assert bound <= 0.0
                assert table.pose_conflicts(pose, float(time), margin=0.0)


# ---------------------------------------------------------------------------
# Property: serialization round-trips byte-identically
# ---------------------------------------------------------------------------
class TestSerializationRoundTrip:
    @given(entry=reservation_records(owner="ego-7", priority=7))
    def test_dict_round_trip_is_byte_identical(self, entry):
        restored = Reservation.from_dict(entry.to_dict())
        assert restored == entry

    @given(entry=reservation_records(owner="ego-3", priority=3))
    def test_json_round_trip_is_byte_identical(self, entry):
        """Through an actual JSON wire: finite doubles survive exactly."""
        restored = Reservation.from_dict(json.loads(json.dumps(entry.to_dict())))
        assert restored == entry
        assert restored.times == entry.times
        assert restored.poses == entry.poses

    def test_from_dict_defaults_kind(self):
        payload = Reservation(
            owner="a",
            priority=0,
            poses=((1.0, 2.0, 0.5),),
            times=(0.0,),
            length=4.0,
            width=2.0,
        ).to_dict()
        payload.pop("kind")
        assert Reservation.from_dict(payload).kind == "ego"
