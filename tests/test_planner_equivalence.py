"""ESDF-accelerated hybrid A* is equivalent to the SAT-only planner.

The spatial fast path may only *skip* exact checks for provably free poses,
so the accelerated planner must (a) succeed wherever the SAT-only planner
succeeds and (b) produce paths the exact SAT checker confirms collision-free.
Both properties are asserted across every registered scenario preset.
"""

from __future__ import annotations

import pytest

from repro.il.expert import ExpertDriver
from repro.planning.hybrid_astar import HybridAStarPlanner
from repro.spatial import SpatialIndex
from repro.vehicle.params import VehicleParams
from repro.world import ScenarioConfig, SpawnMode, build_scenario, default_scenario_registry

PRESETS = default_scenario_registry().names()


def _planning_problem(scenario_name: str):
    """(start, staging, static obstacles, lot) for one preset's episode."""
    scenario = build_scenario(
        ScenarioConfig(scenario_name=scenario_name, spawn_mode=SpawnMode.REMOTE, seed=1)
    )
    params = VehicleParams()
    expert = ExpertDriver(scenario.lot, scenario.obstacles, params)
    static = scenario.static_obstacles
    staging, _ = expert.final_maneuver(static)
    return scenario, params, static, staging


@pytest.mark.parametrize("scenario_name", PRESETS)
def test_accelerated_planner_no_worse_and_exactly_collision_free(scenario_name):
    scenario, params, static, staging = _planning_problem(scenario_name)
    lot = scenario.lot

    sat_planner = HybridAStarPlanner(params, use_spatial=False)
    sat_result = sat_planner.plan(scenario.start_pose, staging, static, lot)

    index = SpatialIndex(lot, static, params)
    esdf_planner = HybridAStarPlanner(params, use_spatial=True)
    esdf_result = esdf_planner.plan(
        scenario.start_pose, staging, static, lot, spatial_index=index
    )

    # Success no worse than the SAT-only planner.
    if sat_result.success:
        assert esdf_result.success, f"{scenario_name}: accelerated planner lost a solve"

    # Every waypoint of the accelerated path passes the exact SAT oracle at
    # the true (margin-free) footprint.
    if esdf_result.success:
        polygons = [obstacle.box.to_polygon() for obstacle in static]
        for waypoint in esdf_result.path.waypoints:
            assert not sat_planner.pose_in_collision(
                waypoint.pose, polygons, lot, margin=0.0
            ), f"{scenario_name}: accelerated path collides at {waypoint.pose}"


def test_spatial_index_reuse_matches_internal_build():
    """plan() with an injected index equals plan() building its own."""
    scenario, params, static, staging = _planning_problem("angled-cluttered")
    planner = HybridAStarPlanner(params)
    internal = planner.plan(scenario.start_pose, staging, static, scenario.lot)
    injected = planner.plan(
        scenario.start_pose,
        staging,
        static,
        scenario.lot,
        spatial_index=SpatialIndex(scenario.lot, static, params),
    )
    assert internal.success == injected.success
    assert internal.expanded_nodes == injected.expanded_nodes
    assert [w.pose for w in internal.path.waypoints] == [w.pose for w in injected.path.waypoints]
