"""Tests for the procedural lot-layout engine (`repro.world.layouts`)."""

import math

import pytest

from repro.geometry.collision import polygon_polygon_collision
from repro.world.layouts import (
    LAYOUT_FAMILIES,
    LotLayout,
    angled_layout,
    dead_end_layout,
    parallel_layout,
    perpendicular_layout,
)

ALL_FACTORIES = (perpendicular_layout, parallel_layout, angled_layout, dead_end_layout)


class TestLotLayoutValidation:
    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            LotLayout(family="diagonal")

    def test_goal_slot_index_bounds(self):
        with pytest.raises(ValueError):
            LotLayout(num_slots=4, goal_slot_index=4)

    def test_row_must_fit_in_lot(self):
        with pytest.raises(ValueError):
            LotLayout(num_slots=30, slot_pitch=3.4, lot_length=45.0)

    def test_aisle_must_fit_in_width(self):
        with pytest.raises(ValueError):
            LotLayout(lot_width=10.0, aisle_width=8.0)

    def test_with_overrides_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            perpendicular_layout(not_a_knob=3.0)

    def test_with_overrides_coerces_int_fields(self):
        layout = perpendicular_layout(num_slots=6.0, goal_slot_index=2.0)
        assert layout.num_slots == 6
        assert isinstance(layout.num_slots, int)

    def test_round_trip(self):
        layout = angled_layout(aisle_width=7.5)
        assert LotLayout.from_dict(layout.to_dict()) == layout


class TestLayoutGeometry:
    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_all_slots_inside_bounds(self, factory):
        generated = factory().build()
        bounds = generated.lot.bounds
        for slot in generated.slots:
            for vertex in slot.box.vertices():
                assert bounds.contains(vertex), f"{generated}: slot {slot.index} outside lot"

    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_goal_slot_is_the_goal_space(self, factory):
        generated = factory().build()
        goal = generated.lot.goal_pose
        assert goal.distance_to(generated.goal_slot.pose) < 1e-9

    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_aisle_clear_of_slots(self, factory):
        generated = factory().build()
        aisle = generated.aisle.to_polygon()
        for slot in generated.slots:
            assert not polygon_polygon_collision(aisle, slot.box.to_polygon())

    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_spawn_poses_inside_aisle(self, factory):
        generated = factory().build()
        assert generated.aisle.contains(generated.close_spawn.position)
        assert generated.aisle.contains(generated.remote_spawn.position)
        assert generated.lot.spawn_region.min_y >= generated.aisle.min_y
        assert generated.lot.spawn_region.max_y <= generated.aisle.max_y

    def test_families_cover_the_four_geometries(self):
        assert set(LAYOUT_FAMILIES) == {"perpendicular", "parallel", "angled", "dead_end"}
        assert perpendicular_layout().build().goal_slot.pose.theta == pytest.approx(math.pi / 2)
        assert parallel_layout().build().goal_slot.pose.theta == pytest.approx(0.0)
        angled_theta = angled_layout().build().goal_slot.pose.theta
        assert 0.0 < angled_theta < math.pi / 2

    def test_dead_end_has_wall_past_goal(self):
        generated = dead_end_layout().build()
        assert len(generated.structural) == 1
        wall = generated.structural[0]
        assert wall.box.center_x > generated.goal_slot.pose.x
        # The wall blocks the aisle corridor.
        assert polygon_polygon_collision(
            generated.aisle.to_polygon(), wall.box.to_polygon()
        )

    def test_other_families_have_no_structural_obstacles(self):
        for factory in (perpendicular_layout, parallel_layout, angled_layout):
            assert factory().build().structural == ()

    def test_build_is_deterministic(self):
        a = angled_layout().build()
        b = angled_layout().build()
        assert a.slots == b.slots
        assert a.lot == b.lot
