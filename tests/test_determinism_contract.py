"""The deterministic-replay contract (see ``DETERMINISM.md``).

Three layers are pinned here:

1. **Seed derivation** — :func:`repro.core.determinism.derive_seed` is a
   pure, cross-process-stable function of ``(commitment, domain, salt)``
   with golden values frozen in this file, and distinct domains yield
   statistically independent streams.
2. **Compat flag** — ``seed_derivation="legacy"`` (the default) reproduces
   the historical single-stream draw order byte for byte and leaves every
   serialized spec, cache key and config payload unchanged; ``"domain"`` is
   an explicit opt-in that round-trips through serialization.
3. **The fleet-wide parity gate** — one :class:`BatchSpec` of ≥ 16 episodes
   produces *identical* per-episode trace-hash lists on every executor
   backend, and the hashes are invariant to cohort composition and to
   result-memo replay.  This is the single asserted invariant CI's
   ``determinism`` job runs.
"""

from __future__ import annotations

import os
import subprocess
import sys
import warnings

import numpy as np
import pytest

from repro.api import (
    BACKENDS,
    BatchExecutor,
    BatchSpec,
    batch_trace_digest,
    episode_trace_hash,
)
from repro.api.events import StepEvent
from repro.core.determinism import (
    SEED_DOMAINS,
    check_hash_seed,
    derive_rng,
    derive_seed,
    require_matching_hash_seed,
    verify_seed,
)
from repro.vehicle.actions import Action
from repro.vehicle.state import VehicleState
from repro.world.scenario import (
    DifficultyLevel,
    ScenarioConfig,
    ScenarioStreams,
    SpawnMode,
)
from repro.world.world import EpisodeStatus

# Golden values: frozen the day derive_seed was introduced.  If any of these
# change, every recorded trace hash and seeded experiment in the repo's
# history silently stops being reproducible — never "fix" the goldens to
# match new code.
GOLDEN_SEEDS = {
    (0, "scenario.build", None): 8256954910392175760,
    (0, "scenario.patrol", None): 11399281134182976475,
    ("0", "nn.layer", "0"): 12976349311423875925,
}


def parity_batch() -> BatchSpec:
    """The ≥16-episode spec the fleet-wide gate runs on every backend."""
    return BatchSpec(
        method="expert",
        seeds=tuple(range(16)),
        difficulties=(DifficultyLevel.EASY,),
        spawn_mode=SpawnMode.CLOSE,
        scenario_name="perpendicular-easy",
        max_steps=8,
    )


# ---------------------------------------------------------------------------
# 1. Seed derivation
# ---------------------------------------------------------------------------
class TestDeriveSeed:
    def test_golden_values(self):
        for (commitment, domain, salt), expected in GOLDEN_SEEDS.items():
            assert derive_seed(commitment, domain, salt=salt) == expected

    def test_verify_seed(self):
        assert verify_seed(0, "scenario.build", GOLDEN_SEEDS[(0, "scenario.build", None)])
        assert not verify_seed(0, "scenario.build", 1)

    def test_commitment_is_canonicalised_through_str(self):
        # int and str commitments with the same text commit to the same seed,
        # so callers can pass cache keys or raw seeds interchangeably.
        assert derive_seed(7, "scenario.build") == derive_seed("7", "scenario.build")

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            derive_seed(0, "")

    def test_output_fits_numpy_seed_range(self):
        for domain in SEED_DOMAINS:
            for commitment in (0, 1, 2**63, "spec-key"):
                seed = derive_seed(commitment, domain)
                assert 0 <= seed < 2**64
                np.random.default_rng(seed)  # must be an accepted seed

    def test_salt_and_domain_both_separate_streams(self):
        base = derive_seed(5, "nn.layer")
        assert derive_seed(5, "nn.layer", salt="0") != base
        assert derive_seed(5, "nn.layer", salt="1") != derive_seed(5, "nn.layer", salt="0")
        assert derive_seed(5, "scenario.build") != derive_seed(5, "scenario.patrol")

    def test_stable_across_fresh_interpreters(self):
        """The derivation must not depend on interpreter state or hash seed."""
        code = (
            "import sys; sys.path.insert(0, {src!r});"
            "from repro.core.determinism import derive_seed;"
            "print(derive_seed(0, 'scenario.build'))"
        ).format(src=os.path.join(os.path.dirname(__file__), "..", "src"))
        for hash_seed in ("1", "2"):
            env = {**os.environ, "PYTHONHASHSEED": hash_seed}
            output = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                check=True,
                env=env,
                timeout=60,
            ).stdout.strip()
            assert int(output) == GOLDEN_SEEDS[(0, "scenario.build", None)]

    def test_domain_streams_are_uncorrelated(self):
        draws = {
            domain: derive_rng(0, domain).standard_normal(2048)
            for domain in ("scenario.build", "scenario.patrol", "scenario.spawn")
        }
        domains = list(draws)
        for i, first in enumerate(domains):
            for second in domains[i + 1 :]:
                correlation = float(np.corrcoef(draws[first], draws[second])[0, 1])
                assert abs(correlation) < 0.1, (first, second, correlation)


class TestHashSeedGuards:
    def test_check_hash_seed_warns_but_never_raises_when_unpinned(self):
        env_backup = os.environ.pop("PYTHONHASHSEED", None)
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                assert check_hash_seed() is False
            assert any(issubclass(w.category, RuntimeWarning) for w in caught)
        finally:
            if env_backup is not None:
                os.environ["PYTHONHASHSEED"] = env_backup

    def test_require_matching_hash_seed(self):
        current = os.environ.get("PYTHONHASHSEED")
        require_matching_hash_seed(current)  # parent's own value always passes
        with pytest.raises(RuntimeError, match="PYTHONHASHSEED"):
            require_matching_hash_seed("this-will-never-match")


# ---------------------------------------------------------------------------
# 2. Scenario streams and the compat flag
# ---------------------------------------------------------------------------
class TestScenarioStreams:
    def test_legacy_mode_aliases_one_historical_stream(self):
        config = ScenarioConfig(seed=11)  # seed_derivation defaults to legacy
        streams = ScenarioStreams(config)
        assert streams.build is streams.patrol is streams.spawn
        # Byte-for-byte the historical draw order: one generator seeded with
        # the raw scenario seed, consumed sequentially.
        historical = np.random.default_rng(11)
        interleaved = [
            streams.build.uniform(),
            streams.patrol.uniform(),
            streams.spawn.uniform(),
        ]
        assert interleaved == [historical.uniform() for _ in range(3)]

    def test_domain_mode_derives_independent_streams(self):
        config = ScenarioConfig(seed=11, seed_derivation="domain")
        streams = ScenarioStreams(config)
        assert streams.build is not streams.patrol
        assert streams.patrol is not streams.spawn
        assert streams.build.uniform() == derive_rng(11, "scenario.build").uniform()
        assert streams.patrol.uniform() == derive_rng(11, "scenario.patrol").uniform()
        assert streams.spawn.uniform() == derive_rng(11, "scenario.spawn").uniform()

    def test_invalid_derivation_rejected(self):
        with pytest.raises(ValueError, match="seed_derivation"):
            ScenarioConfig(seed=0, seed_derivation="quantum")
        with pytest.raises(ValueError, match="seed_derivation"):
            BatchSpec(method="expert", seeds=(0,), seed_derivation="quantum")


class TestCompatFlagSerialization:
    def test_legacy_payloads_and_cache_keys_are_unchanged(self):
        """The default mode must not appear in any serialized form.

        Pre-PR payloads, result-memo cache keys and BENCH records were
        produced without the flag; emitting it for the default would orphan
        every one of them.
        """
        config = ScenarioConfig(seed=3)
        assert "seed_derivation" not in config.to_dict()
        batch = BatchSpec(method="expert", seeds=(0, 1))
        assert "seed_derivation" not in batch.to_dict()
        for episode in batch.episode_specs():
            assert "seed_derivation" not in episode.to_dict()["scenario"]
            assert episode.seed_derivation == "legacy"

    def test_domain_mode_round_trips(self):
        batch = BatchSpec(method="expert", seeds=(0, 1), seed_derivation="domain")
        assert batch.to_dict()["seed_derivation"] == "domain"
        assert BatchSpec.from_dict(batch.to_dict()) == batch
        episode = batch.episode_specs()[0]
        assert episode.seed_derivation == "domain"
        rebuilt = type(episode).from_dict(episode.to_dict())
        assert rebuilt == episode
        assert rebuilt.cache_key() != episode.with_seed(99).cache_key()

    def test_domain_and_legacy_cache_keys_differ(self):
        legacy = BatchSpec(method="expert", seeds=(0,)).episode_specs()[0]
        domain = BatchSpec(
            method="expert", seeds=(0,), seed_derivation="domain"
        ).episode_specs()[0]
        assert legacy.cache_key() != domain.cache_key()

    def test_batch_co_solver_round_trips(self):
        # Regression: an early return in BatchSpec.to_dict used to silently
        # drop co_solver from every serialized batch.
        batch = BatchSpec(method="expert", seeds=(0,), co_solver="batched")
        assert batch.to_dict()["co_solver"] == "batched"
        assert BatchSpec.from_dict(batch.to_dict()) == batch


# ---------------------------------------------------------------------------
# 3. Trace hashing
# ---------------------------------------------------------------------------
def _event(**overrides) -> StepEvent:
    defaults = dict(
        stamp=0.1,
        step_index=0,
        pre_step_state=VehicleState(x=1.0, y=2.0, heading=0.3, velocity=0.5, steer=0.1),
        state=VehicleState(x=1.1, y=2.0, heading=0.3, velocity=0.6, steer=0.1),
        action=Action(throttle=0.5, brake=0.0, steer=0.1, reverse=False),
        mode="co",
        uncertainty=0.2,
        hsa_score=0.7,
        switched=False,
        min_obstacle_distance=3.5,
        status=EpisodeStatus.RUNNING,
    )
    defaults.update(overrides)
    return StepEvent(**defaults)


class TestEpisodeTraceHash:
    def test_deterministic_and_order_sensitive(self):
        first = _event(step_index=0)
        second = _event(step_index=1, stamp=0.2)
        assert episode_trace_hash([first, second]) == episode_trace_hash([first, second])
        assert episode_trace_hash([first, second]) != episode_trace_hash([second, first])

    def test_every_field_is_load_bearing(self):
        base = episode_trace_hash([_event()])
        perturbed = [
            _event(stamp=0.2),
            _event(step_index=5),
            _event(state=VehicleState(x=1.1000000001, y=2.0, heading=0.3, velocity=0.6, steer=0.1)),
            _event(action=Action(throttle=0.5, brake=0.0, steer=0.1, reverse=True)),
            _event(mode="il"),
            _event(uncertainty=0.3),
            _event(hsa_score=0.8),
            _event(switched=True),
            _event(min_obstacle_distance=3.6),
            _event(status=EpisodeStatus.PARKED),
        ]
        hashes = [episode_trace_hash([event]) for event in perturbed]
        assert base not in hashes
        assert len(set(hashes)) == len(hashes)

    def test_string_fields_are_length_prefixed(self):
        # "ab" + "c" must not collide with "a" + "bc" across the mode/status
        # boundary; length prefixes make the framing injective.
        assert episode_trace_hash([_event(mode="ab")]) != episode_trace_hash([_event(mode="a")])

    def test_batch_digest_is_injective_over_framing(self):
        assert batch_trace_digest(["ab", "c"]) != batch_trace_digest(["a", "bc"])
        assert batch_trace_digest([]) != batch_trace_digest([""])
        assert batch_trace_digest(["x"]) == batch_trace_digest(iter(["x"]))


# ---------------------------------------------------------------------------
# 4. The fleet-wide parity gate (run by CI's `determinism` job)
# ---------------------------------------------------------------------------
class TestFleetWideParityGate:
    def test_every_backend_produces_identical_trace_hashes(self):
        """The contract's single asserted invariant, on a ≥16-episode batch."""
        spec = parity_batch()
        assert spec.num_episodes >= 16
        hash_lists = {}
        for backend in BACKENDS:
            outcome = BatchExecutor(
                backend=backend, max_workers=2, summary_stream=None
            ).run(spec)
            hashes = [result.trace_hash for result in outcome.results]
            assert len(hashes) == spec.num_episodes
            assert all(len(h) == 64 for h in hashes)
            assert outcome.summary.trace_digest == batch_trace_digest(hashes)
            hash_lists[backend] = hashes
        assert len({tuple(hashes) for hashes in hash_lists.values()}) == 1, hash_lists

    def test_hashes_invariant_to_cohort_composition(self):
        """An episode's hash must not depend on what else ran in its batch."""
        spec = parity_batch()
        full = BatchExecutor(backend="fleet", max_workers=2, summary_stream=None).run(spec)
        subset_spec = BatchSpec(
            method=spec.method,
            seeds=spec.seeds[3:7],
            difficulties=spec.difficulties,
            spawn_mode=spec.spawn_mode,
            scenario_name=spec.scenario_name,
            max_steps=spec.max_steps,
        )
        subset = BatchExecutor(backend="fleet", max_workers=2, summary_stream=None).run(
            subset_spec
        )
        by_seed = {result.seed: result.trace_hash for result in full.results}
        for result in subset.results:
            assert result.trace_hash == by_seed[result.seed]

    def test_hashes_invariant_to_result_memo_replay(self):
        """Memo-served episodes carry the exact hashes of their cold run."""
        spec = parity_batch()
        executor = BatchExecutor(
            backend="thread", max_workers=2, reuse_results=True, summary_stream=None
        )
        cold = executor.run(spec)
        warm = executor.run(spec)
        assert warm.summary.cache_hit_rate == 1.0
        assert [r.trace_hash for r in warm.results] == [r.trace_hash for r in cold.results]
        assert warm.summary.trace_digest == cold.summary.trace_digest

    def test_multi_ego_scenario_holds_backend_parity(self):
        """Both per-ego views of ``multi-ego-2`` ride the same gate.

        Uncoordinated specs (no ledger — coordination is session-level
        opt-in, never a spec field) must hash identically on every
        backend, exactly like every other preset.
        """
        hash_lists = {}
        for backend in BACKENDS:
            per_backend = []
            for ego_index in (0, 1):
                spec = BatchSpec(
                    method="expert",
                    seeds=(0, 1, 2, 3),
                    difficulties=(DifficultyLevel.NORMAL,),
                    spawn_mode=SpawnMode.CLOSE,
                    scenario_name="multi-ego-2",
                    layout_params={"ego_index": ego_index},
                    max_steps=8,
                )
                outcome = BatchExecutor(
                    backend=backend, max_workers=2, summary_stream=None
                ).run(spec)
                per_backend.extend(result.trace_hash for result in outcome.results)
            assert len(per_backend) == 8
            hash_lists[backend] = per_backend
        assert len({tuple(hashes) for hashes in hash_lists.values()}) == 1, hash_lists

    def test_domain_mode_holds_the_same_parity_contract(self):
        """Opting into domain-separated streams keeps fleet-wide parity."""
        spec = BatchSpec(
            method="expert",
            seeds=(0, 1, 2),
            difficulties=(DifficultyLevel.EASY,),
            spawn_mode=SpawnMode.CLOSE,
            scenario_name="perpendicular-easy",
            max_steps=8,
            seed_derivation="domain",
        )
        legacy_spec = BatchSpec.from_dict({**spec.to_dict()})
        assert legacy_spec == spec  # round-trip keeps the flag
        hash_lists = []
        for backend in ("thread", "process"):
            outcome = BatchExecutor(
                backend=backend, max_workers=2, summary_stream=None
            ).run(spec)
            hash_lists.append([result.trace_hash for result in outcome.results])
        assert hash_lists[0] == hash_lists[1]

    def test_domain_and_legacy_modes_diverge(self):
        """The flag is load-bearing: the two modes replay different episodes."""

        def run(derivation: str):
            spec = BatchSpec(
                method="expert",
                seeds=(0,),
                difficulties=(DifficultyLevel.EASY,),
                spawn_mode=SpawnMode.RANDOM,  # spawn stream is consumed
                scenario_name="legacy",
                max_steps=8,
                seed_derivation=derivation,
            )
            outcome = BatchExecutor(backend="thread", summary_stream=None).run(spec)
            return outcome.results[0].trace_hash

        assert run("legacy") != run("domain")
