"""Tests for BEV rendering, the ego-view camera and the object detector."""

import numpy as np
import pytest

from repro.perception import (
    BEVRenderer,
    DetectionNoiseModel,
    EgoViewCamera,
    GaussianImageNoise,
    NoNoise,
    ObjectDetector,
)
from repro.vehicle.state import VehicleState
from repro.world.obstacles import make_parked_car


class TestNoise:
    def test_no_noise_is_identity(self, rng):
        image = rng.random((3, 8, 8))
        assert np.array_equal(NoNoise().apply(image, rng), image)

    def test_gaussian_noise_stays_in_range(self, rng):
        noise = GaussianImageNoise(std=0.3, dropout_probability=0.1)
        noisy = noise.apply(np.full((3, 16, 16), 0.5), rng)
        assert noisy.min() >= 0.0 and noisy.max() <= 1.0

    def test_gaussian_noise_changes_image(self, rng):
        noise = GaussianImageNoise(std=0.1)
        image = np.full((1, 8, 8), 0.5)
        assert not np.array_equal(noise.apply(image, rng), image)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GaussianImageNoise(std=-1.0)
        with pytest.raises(ValueError):
            GaussianImageNoise(dropout_probability=2.0)


class TestBEVRenderer:
    def test_output_shape_and_range(self, easy_scenario):
        renderer = BEVRenderer(image_size=32)
        state = VehicleState.from_pose(easy_scenario.start_pose)
        image = renderer.render(state, easy_scenario.obstacles, easy_scenario.lot)
        assert image.data.shape == (3, 32, 32)
        assert image.data.min() >= 0.0 and image.data.max() <= 1.0
        assert image.channels == 3

    def test_goal_channel_nonempty_when_goal_in_range(self, easy_scenario):
        renderer = BEVRenderer(image_size=32, view_range=15.0)
        goal = easy_scenario.goal_pose
        state = VehicleState(goal.x - 5.0, goal.y + 3.0, 0.0)
        image = renderer.render(state, easy_scenario.obstacles, easy_scenario.lot)
        assert image.goal_channel.sum() > 0.0

    def test_obstacle_channel_empty_without_obstacles(self, easy_scenario):
        renderer = BEVRenderer(image_size=32)
        state = VehicleState.from_pose(easy_scenario.start_pose)
        image = renderer.render(state, [], easy_scenario.lot)
        assert image.obstacle_channel.sum() == 0.0

    def test_ego_centric_invariance(self, easy_scenario):
        """Translating world and ego together leaves the image unchanged."""
        renderer = BEVRenderer(image_size=32)
        obstacle = make_parked_car("c", 10.0, 10.0, 0.0)
        shifted = make_parked_car("c", 15.0, 10.0, 0.0)
        image_a = renderer.render(VehicleState(5.0, 10.0, 0.0), [obstacle], easy_scenario.lot)
        image_b = renderer.render(VehicleState(10.0, 10.0, 0.0), [shifted], easy_scenario.lot)
        assert np.allclose(image_a.obstacle_channel, image_b.obstacle_channel)

    def test_frame_index_increments(self, easy_scenario):
        renderer = BEVRenderer(image_size=32)
        state = VehicleState.from_pose(easy_scenario.start_pose)
        first = renderer.render(state, [], easy_scenario.lot)
        second = renderer.render(state, [], easy_scenario.lot)
        assert second.frame_index == first.frame_index + 1

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            BEVRenderer(image_size=4)


class TestEgoViewCamera:
    def test_ranges_shape(self, easy_scenario):
        camera = EgoViewCamera(num_rays=11, max_range=15.0)
        state = VehicleState.from_pose(easy_scenario.start_pose)
        observation = camera.capture(state, easy_scenario.obstacles, easy_scenario.lot)
        assert observation.num_rays == 11
        assert observation.ranges.max() <= 15.0

    def test_obstacle_reduces_range(self, easy_scenario):
        camera = EgoViewCamera(num_rays=5, max_range=20.0)
        state = VehicleState(10.0, 11.0, 0.0)
        obstacle = make_parked_car("front", 15.0, 11.0, 0.0)
        free = camera.capture(state, [], easy_scenario.lot)
        blocked = camera.capture(state, [obstacle], easy_scenario.lot)
        assert blocked.min_range < free.min_range

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            EgoViewCamera(num_rays=1)


class TestObjectDetector:
    def test_detects_nearby_obstacles(self, easy_scenario):
        detector = ObjectDetector(noise=DetectionNoiseModel(), max_range=50.0)
        state = VehicleState.from_pose(easy_scenario.start_pose)
        detections = detector.detect(state, easy_scenario.obstacles, time=0.0)
        assert len(detections) == len(easy_scenario.obstacles)

    def test_range_limit(self, easy_scenario):
        detector = ObjectDetector(max_range=2.0)
        state = VehicleState.from_pose(easy_scenario.start_pose)
        assert detector.detect(state, easy_scenario.obstacles, time=0.0) == []

    def test_dropout_removes_detections(self, normal_scenario):
        detector = ObjectDetector(
            noise=DetectionNoiseModel(dropout_probability=0.99), max_range=100.0, seed=1
        )
        state = VehicleState.from_pose(normal_scenario.start_pose)
        detections = detector.detect(state, normal_scenario.obstacles, time=0.0)
        assert len(detections) < len(normal_scenario.obstacles)

    def test_velocity_estimated_for_dynamic(self, normal_scenario):
        detector = ObjectDetector(noise=DetectionNoiseModel(position_std=0.0), max_range=100.0)
        state = VehicleState.from_pose(normal_scenario.start_pose)
        for step in range(5):
            detections = detector.detect(state,
                [o.at_time(step * 0.1) for o in normal_scenario.obstacles], time=step * 0.1)
        dynamic = [d for d in detections if d.obstacle_id and d.obstacle_id.startswith("dynamic")]
        assert dynamic
        assert any(np.linalg.norm(d.velocity) > 0.05 for d in dynamic)

    def test_false_positives_marked(self, easy_scenario):
        detector = ObjectDetector(
            noise=DetectionNoiseModel(false_positive_rate=1.0), max_range=100.0, seed=0
        )
        state = VehicleState.from_pose(easy_scenario.start_pose)
        detections = detector.detect(state, easy_scenario.obstacles, time=0.0)
        assert any(d.is_false_positive for d in detections)

    def test_noise_model_for_difficulty_scales(self):
        easy = DetectionNoiseModel.for_difficulty(0.05)
        hard = DetectionNoiseModel.for_difficulty(0.25)
        assert hard.position_std > easy.position_std
        assert hard.dropout_probability > easy.dropout_probability

    def test_invalid_noise_model(self):
        with pytest.raises(ValueError):
            DetectionNoiseModel(position_std=-0.1)
        with pytest.raises(ValueError):
            DetectionNoiseModel(dropout_probability=1.0)
