"""Batched solver and array-backend seam: ``solve_many`` must agree with
per-problem :class:`~repro.co.solver.GaussNewtonSolver` solves."""

import numpy as np
import pytest

from repro.co import (
    ArrayBackend,
    BatchedGaussNewtonSolver,
    GaussNewtonSolver,
    MPCProblem,
    ProblemBatch,
    clear_array_backend,
    current_array_backend,
    install_array_backend,
    resolve_backend,
)
from repro.co.constraints import FieldConstraintStack, ObstaclePrediction
from repro.co.controller import COController
from repro.geometry.se2 import SE2
from repro.planning.waypoints import WaypointPath
from repro.spatial import DistanceField, OccupancyGrid
from repro.vehicle.kinematics import AckermannModel
from repro.vehicle.params import VehicleParams
from repro.vehicle.state import VehicleState

HORIZON = 8
PARAMS = VehicleParams()
MODEL = AckermannModel(PARAMS, dt=0.25)


def _problem(seed, num_obstacles=1, field_constraint=None):
    rng = np.random.default_rng(seed)
    state = VehicleState(
        x=rng.uniform(-1, 1),
        y=rng.uniform(-1, 1),
        heading=rng.uniform(-0.5, 0.5),
        velocity=rng.uniform(-0.3, 0.8),
    )
    references = np.cumsum(rng.uniform(0.05, 0.3, size=(HORIZON, 2)), axis=0)
    headings = rng.uniform(-0.3, 0.3, size=HORIZON)
    predictions = []
    for _ in range(num_obstacles):
        circles = np.tile(rng.uniform(1.5, 3.5, size=(1, 2, 2)), (HORIZON, 1, 1))
        predictions.append(
            ObstaclePrediction(circle_positions=circles, circle_radius=0.4, safety_margin=0.1)
        )
    return MPCProblem(
        model=MODEL,
        initial_state=state,
        reference_positions=references,
        reference_headings=headings,
        obstacle_predictions=predictions,
        field_constraint=field_constraint,
    )


def _field_stack():
    occupied = np.zeros((40, 40), dtype=bool)
    occupied[18:22, 18:22] = True
    grid = OccupancyGrid(origin_x=-5.0, origin_y=-5.0, resolution=0.25, occupied=occupied)
    return FieldConstraintStack(static_field=DistanceField(grid), static_clearance=1.0)


def _assert_matches_scalar(problems, warm_starts=None):
    scalar = [
        GaussNewtonSolver().solve(p, initial_controls=None if warm_starts is None else warm_starts[i])
        for i, p in enumerate(problems)
    ]
    batched = BatchedGaussNewtonSolver().solve_many(problems, initial_controls=warm_starts)
    assert len(batched) == len(problems)
    for one, many in zip(scalar, batched):
        np.testing.assert_allclose(many.controls, one.controls, atol=1e-9)
        assert many.objective == pytest.approx(one.objective, abs=1e-9)
        assert many.converged == one.converged
        assert many.feasible == one.feasible


class TestSolveManyParity:
    def test_stacked_regime_matches_scalar(self):
        _assert_matches_scalar([_problem(seed) for seed in range(12)])

    def test_stacked_regime_with_warm_starts(self):
        rng = np.random.default_rng(99)
        problems = [_problem(seed) for seed in range(6)]
        warm = [rng.uniform(-0.3, 0.3, size=(HORIZON, 2)) for _ in problems]
        warm[2] = None  # cold start mixed in
        _assert_matches_scalar(problems, warm_starts=warm)

    def test_obstacle_free_batch_matches_scalar(self):
        _assert_matches_scalar([_problem(seed, num_obstacles=0) for seed in range(4)])

    def test_ragged_circle_counts_fall_back_to_mixed(self):
        problems = [_problem(seed, num_obstacles=seed % 3) for seed in range(6)]
        batch = ProblemBatch(problems)
        assert not batch.stacked_collision
        _assert_matches_scalar(problems)

    def test_field_constraint_problems_use_mixed_regime(self):
        stack = _field_stack()
        problems = [
            _problem(seed, num_obstacles=seed % 2, field_constraint=stack if seed % 2 else None)
            for seed in range(4)
        ]
        batch = ProblemBatch(problems)
        assert not batch.stacked_collision
        _assert_matches_scalar(problems)

    def test_single_problem_batch(self):
        _assert_matches_scalar([_problem(7)])

    def test_incompatible_horizon_rejected(self):
        short = MPCProblem(
            model=MODEL,
            initial_state=VehicleState(0.0, 0.0, 0.0, 0.0),
            reference_positions=np.zeros((HORIZON - 1, 2)),
        )
        with pytest.raises(ValueError, match="horizon"):
            ProblemBatch([_problem(0), short])

    def test_mismatched_warm_start_count_rejected(self):
        with pytest.raises(ValueError, match="warm starts"):
            BatchedGaussNewtonSolver().solve_many([_problem(0)], initial_controls=[None, None])

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ProblemBatch([])


class TestArrayBackendSeam:
    def test_default_is_numpy(self):
        assert current_array_backend().name == "numpy"
        assert resolve_backend(None).name == "numpy"
        assert resolve_backend("numpy").xp is np

    def test_backend_instance_passthrough(self):
        backend = ArrayBackend(name="custom", xp=np)
        assert resolve_backend(backend) is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown array backend"):
            resolve_backend("tensorflow")
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_install_and_clear(self):
        backend = ArrayBackend(name="installed-numpy", xp=np)
        previous = install_array_backend(backend)
        try:
            assert previous is None
            assert current_array_backend() is backend
            assert resolve_backend(None) is backend
        finally:
            clear_array_backend()
        assert current_array_backend().name == "numpy"

    def test_solver_accepts_backend_by_name(self):
        problems = [_problem(seed) for seed in range(3)]
        results = BatchedGaussNewtonSolver(backend="numpy").solve_many(problems)
        assert len(results) == 3

    def test_batched_vector_solve(self):
        backend = resolve_backend("numpy")
        rng = np.random.default_rng(0)
        matrices = rng.normal(size=(5, 4, 4)) + 4.0 * np.eye(4)
        rhs = rng.normal(size=(5, 4))
        solution = backend.solve(matrices, rhs)
        for index in range(5):
            np.testing.assert_allclose(
                solution[index], np.linalg.solve(matrices[index], rhs[index])
            )


class TestActMany:
    def _controller_and_state(self, seed):
        rng = np.random.default_rng(seed)
        controller = COController(vehicle_params=PARAMS, horizon=HORIZON)
        start = rng.uniform(-1.0, 1.0, size=2)
        goal = start + np.array([8.0, rng.uniform(-2.0, 2.0)])
        controller.set_reference_path(
            WaypointPath.straight_line(SE2(float(start[0]), float(start[1]), 0.0), goal)
        )
        state = VehicleState(
            x=float(start[0]),
            y=float(start[1]),
            heading=rng.uniform(-0.2, 0.2),
            velocity=rng.uniform(0.0, 0.5),
        )
        return controller, state

    def test_matches_sequential_act(self):
        pairs = [self._controller_and_state(seed) for seed in range(5)]
        sequential = []
        for seed in range(5):
            controller, state = self._controller_and_state(seed)
            sequential.append((controller.act(state), controller.last_info))

        controllers = [controller for controller, _ in pairs]
        states = [state for _, state in pairs]
        actions = COController.act_many(controllers, states)
        for (expected_action, expected_info), action, controller in zip(
            sequential, actions, controllers
        ):
            assert action.steer == pytest.approx(expected_action.steer, abs=1e-6)
            assert action.throttle == pytest.approx(expected_action.throttle, abs=1e-6)
            assert action.brake == pytest.approx(expected_action.brake, abs=1e-6)
            assert action.reverse == expected_action.reverse
            info = controller.last_info
            assert info.backend == "numpy"
            assert info.jacobian_mode == "analytic"
            assert info.objective == pytest.approx(expected_info.objective, abs=1e-6)

    def test_updates_warm_starts(self):
        controllers, states = zip(*[self._controller_and_state(seed) for seed in range(3)])
        COController.act_many(list(controllers), list(states))
        for controller in controllers:
            assert controller._warm_start is not None
            assert controller._warm_start.shape == (HORIZON, 2)

    def test_length_mismatch_rejected(self):
        controller, state = self._controller_and_state(0)
        with pytest.raises(ValueError, match="states"):
            COController.act_many([controller], [state, state])
