"""Tests for the spatial-query engine: grid, ESDF, heuristic, index.

The load-bearing property is *conservativeness*: the interpolated clearance
must never overestimate the true SAT distance by more than the field's
``slack`` (that is what lets planners skip the exact narrow phase), while
underestimation is bounded by a couple of cells (so the fast path stays
useful).  Randomized layouts exercise the bound far from the hand-built
presets.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.geometry.collision import point_polygon_distance
from repro.geometry.se2 import SE2
from repro.geometry.shapes import AxisAlignedBox, OrientedBox
from repro.spatial import (
    DistanceField,
    FootprintCircles,
    OccupancyGrid,
    SpatialIndex,
    oriented_box_distances,
)
from repro.vehicle.params import VehicleParams
from repro.world.obstacles import StaticObstacle
from repro.world.parking_lot import ParkingLot, ParkingSpace
from repro.world.scenario import ScenarioConfig, SpawnMode, build_scenario


def _random_lot(rng: np.random.Generator, num_obstacles: int):
    """A random lot with random non-degenerate box obstacles."""
    length = float(rng.uniform(25.0, 50.0))
    width = float(rng.uniform(14.0, 25.0))
    bounds = AxisAlignedBox(0.0, 0.0, length, width)
    lot = ParkingLot(
        bounds=bounds,
        spawn_region=AxisAlignedBox(2.0, 2.0, 6.0, 6.0),
        goal_space=ParkingSpace.from_target("goal", SE2(length - 5.0, 5.0, math.pi / 2.0)),
    )
    obstacles = []
    for index in range(num_obstacles):
        box = OrientedBox(
            float(rng.uniform(3.0, length - 3.0)),
            float(rng.uniform(3.0, width - 3.0)),
            float(rng.uniform(0.8, 5.0)),
            float(rng.uniform(0.8, 3.0)),
            float(rng.uniform(0.0, math.pi)),
        )
        obstacles.append(StaticObstacle(f"random-{index}", box))
    return lot, obstacles


def _true_distance(point: np.ndarray, lot: ParkingLot, polygons) -> float:
    """Brute-force SAT distance to the nearest obstacle or the lot boundary."""
    bounds = lot.bounds
    if bounds.contains(point):
        boundary = min(
            point[0] - bounds.min_x,
            bounds.max_x - point[0],
            point[1] - bounds.min_y,
            bounds.max_y - point[1],
        )
    else:
        boundary = 0.0
    obstacle = min(
        (point_polygon_distance(point, polygon) for polygon in polygons), default=math.inf
    )
    return min(boundary, obstacle)


class TestClearanceAgreesWithSAT:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_randomized_layouts_within_grid_resolution(self, seed):
        """Field clearance matches brute-force SAT distance within grid error."""
        rng = np.random.default_rng(seed)
        lot, obstacles = _random_lot(rng, num_obstacles=int(rng.integers(2, 8)))
        index = SpatialIndex(lot, obstacles)
        polygons = index.obstacle_polygons
        points = np.stack(
            [
                rng.uniform(lot.bounds.min_x - 1.0, lot.bounds.max_x + 1.0, 400),
                rng.uniform(lot.bounds.min_y - 1.0, lot.bounds.max_y + 1.0, 400),
            ],
            axis=1,
        )
        clearances = index.clearance(points)
        resolution = index.field.resolution
        for point, clearance in zip(points, clearances):
            true = _true_distance(point, lot, polygons)
            if true <= 0.0:
                continue  # inside an obstacle / outside the lot: sign tested below
            # Never overestimates beyond slack (the safety-critical direction)
            assert clearance - true <= index.slack + 1e-9
            # Never underestimates beyond a couple of cells (usefulness)
            assert true - clearance <= 2.5 * resolution + 1e-9

    def test_points_deep_inside_obstacles_are_negative(self):
        lot, _ = _random_lot(np.random.default_rng(7), 0)
        box = OrientedBox(12.0, 8.0, 6.0, 4.0, 0.3)
        index = SpatialIndex(lot, [StaticObstacle("big", box)])
        assert index.clearance(np.array([[12.0, 8.0]]))[0] < 0.0

    def test_points_far_outside_lot_are_non_positive(self):
        lot, obstacles = _random_lot(np.random.default_rng(8), 2)
        index = SpatialIndex(lot, obstacles)
        outside = np.array([[lot.bounds.max_x + 10.0, lot.bounds.max_y + 10.0]])
        assert index.clearance(outside)[0] <= 0.0

    def test_scenario_convenience_matches_from_scenario(self):
        """Scenario.build_spatial_index covers the same statics as from_scenario."""
        scenario = build_scenario(
            ScenarioConfig(scenario_name="angled-cluttered", spawn_mode=SpawnMode.CLOSE, seed=3)
        )
        via_scenario = scenario.build_spatial_index()
        direct = SpatialIndex.from_scenario(scenario)
        assert np.array_equal(via_scenario.grid.occupied, direct.grid.occupied)
        assert np.array_equal(via_scenario.field.distance, direct.field.distance)


class TestOccupancyGrid:
    def test_conservative_rasterization_covers_obstacle(self):
        """Every point inside an obstacle is within slack of an occupied centre."""
        lot, _ = _random_lot(np.random.default_rng(3), 0)
        box = OrientedBox(10.0, 7.0, 3.0, 1.5, 0.7)
        grid = OccupancyGrid.from_lot(lot, [StaticObstacle("one", box)])
        field = DistanceField(grid)
        rng = np.random.default_rng(0)
        local = np.stack(
            [rng.uniform(-1.5, 1.5, 100), rng.uniform(-0.75, 0.75, 100)], axis=1
        )
        world = box.pose.transform_points(local)
        assert (field.clearance(world) <= field.slack).all()

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            OccupancyGrid(0.0, 0.0, 0.0, np.zeros((4, 4), dtype=bool))
        with pytest.raises(ValueError):
            OccupancyGrid(0.0, 0.0, 0.5, np.zeros((0, 4), dtype=bool))


class TestGoalHeuristic:
    def test_open_space_close_to_euclidean(self):
        lot, _ = _random_lot(np.random.default_rng(11), 0)
        index = SpatialIndex(lot, [])
        goal = (lot.bounds.max_x - 6.0, lot.bounds.center[1])
        heuristic = index.heuristic_to(*goal)
        probe = (6.0, float(lot.bounds.center[1]))
        value = heuristic.query(*probe)
        euclid = math.hypot(probe[0] - goal[0], probe[1] - goal[1])
        assert value is not None
        assert euclid - 1.0 <= value <= euclid * 1.1 + 1.5

    def test_wall_forces_detour(self):
        """A wall across the direct route shows up as extra flood distance."""
        bounds = AxisAlignedBox(0.0, 0.0, 30.0, 20.0)
        lot = ParkingLot(
            bounds=bounds,
            spawn_region=AxisAlignedBox(1.0, 1.0, 4.0, 4.0),
            goal_space=ParkingSpace.from_target("goal", SE2(25.0, 10.0, 0.0)),
        )
        # Wall spans most of the lot's height, leaving a gap at the top
        # (heading pi/2 points the 14 m length axis along +y).
        wall = StaticObstacle("wall", OrientedBox(15.0, 7.0, 14.0, 1.0, math.pi / 2.0))
        index = SpatialIndex(lot, [wall])
        heuristic = index.heuristic_to(25.0, 10.0)
        value = heuristic.query(5.0, 10.0)
        euclid = 20.0
        assert value is not None
        assert value > euclid + 2.0  # must detour around the wall

    def test_unreachable_pocket_returns_none(self):
        bounds = AxisAlignedBox(0.0, 0.0, 30.0, 20.0)
        lot = ParkingLot(
            bounds=bounds,
            spawn_region=AxisAlignedBox(1.0, 1.0, 4.0, 4.0),
            goal_space=ParkingSpace.from_target("goal", SE2(25.0, 10.0, 0.0)),
        )
        # Full-height wall: nothing to the left of it can reach the goal.
        wall = StaticObstacle("wall", OrientedBox(15.0, 10.0, 26.0, 1.0, math.pi / 2.0))
        index = SpatialIndex(lot, [wall])
        heuristic = index.heuristic_to(25.0, 10.0)
        assert heuristic.query(5.0, 10.0) is None
        assert heuristic.query(-50.0, -50.0) is None


class TestFootprintAndPoseClearance:
    def test_circles_cover_inflated_footprint(self):
        params = VehicleParams()
        margin = 0.35
        circles = FootprintCircles(params, margin)
        rng = np.random.default_rng(5)
        pose = SE2(3.0, -2.0, 0.8)
        centers = circles.centers(np.array([[pose.x, pose.y, pose.theta]]))[0]
        # Sample the inflated footprint and check every point is inside a circle.
        length = params.length + 2.0 * margin
        width = params.width + 2.0 * margin
        rear = -(params.rear_overhang + margin)
        local = np.stack(
            [rng.uniform(rear, rear + length, 300), rng.uniform(-width / 2, width / 2, 300)],
            axis=1,
        )
        world = pose.transform_points(local)
        distances = np.linalg.norm(world[:, None, :] - centers[None, :, :], axis=2)
        assert (distances.min(axis=1) <= circles.radius + 1e-9).all()

    def test_positive_pose_clearance_implies_exact_free(self):
        """The planner fast path: a positive bound must survive the SAT oracle."""
        from repro.planning.hybrid_astar import HybridAStarPlanner

        scenario = build_scenario(
            ScenarioConfig(scenario_name="angled-cluttered", spawn_mode=SpawnMode.CLOSE, seed=3)
        )
        params = VehicleParams()
        index = SpatialIndex.from_scenario(scenario, vehicle_params=params)
        planner = HybridAStarPlanner(params)
        rng = np.random.default_rng(1)
        bounds = scenario.lot.bounds
        poses = np.stack(
            [
                rng.uniform(bounds.min_x, bounds.max_x, 400),
                rng.uniform(bounds.min_y, bounds.max_y, 400),
                rng.uniform(-math.pi, math.pi, 400),
            ],
            axis=1,
        )
        clearance_bounds = index.pose_clearance(poses, margin=planner.safety_margin)
        checked = 0
        for pose_array, bound in zip(poses, clearance_bounds):
            if bound > 0.0:
                checked += 1
                pose = SE2(*pose_array)
                assert not planner.pose_in_collision(
                    pose, index.obstacle_polygons, scenario.lot
                )
        assert checked > 20  # the fast path must actually fire


class TestOrientedBoxDistances:
    def test_matches_pointwise_geometry(self):
        rng = np.random.default_rng(9)
        boxes = [
            OrientedBox(
                float(rng.uniform(-10, 10)),
                float(rng.uniform(-10, 10)),
                float(rng.uniform(0.5, 5.0)),
                float(rng.uniform(0.5, 3.0)),
                float(rng.uniform(0.0, math.pi)),
            )
            for _ in range(20)
        ]
        point = np.array([1.0, -2.0])
        distances = oriented_box_distances(point, boxes)
        for box, distance in zip(boxes, distances):
            expected = point_polygon_distance(point, box.to_polygon())
            assert distance == pytest.approx(expected, abs=1e-9)

    def test_empty_batch(self):
        assert oriented_box_distances(np.zeros(2), []).shape == (0,)
