"""The scripted expert parks on every registered scenario preset.

PR 2 left the expert at 6/8 presets; the ESDF-scored maneuver ladder (pick
the shortest S-curve among candidates whose clearance bound is within 0.1 m
of the best achievable) fixed the remaining kerbside failures, so this test
now pins *all* presets at PARKED.  If a preset regresses — or a future
change breaks the fix — the parametrized case names the exact scenario.

Keep failures explicit: a preset that legitimately cannot be parked any
more must be marked ``pytest.param(..., marks=pytest.mark.xfail(strict=True))``
here, never silently dropped, so both regressions *and* silent fixes fail
the suite.
"""

from __future__ import annotations

import pytest

from repro.api import BatchExecutor, EpisodeSpec
from repro.world import ScenarioConfig, SpawnMode, default_scenario_registry

PRESETS = default_scenario_registry().names()

# (scenario, seed) cases; all currently park.  Pin regressions with
# pytest.param(name, seed, marks=pytest.mark.xfail(strict=True, reason=...)).
CASES = [(name, 1) for name in PRESETS] + [
    # parallel-hard was the PR-2 failure mode (COLLIDED on every seed);
    # pin extra seeds so the shortest-sweep ladder fix cannot silently rot.
    ("parallel-hard", 0),
    ("parallel-hard", 2),
]


@pytest.mark.parametrize("scenario_name,seed", CASES)
def test_expert_parks_on_preset(scenario_name, seed):
    spec = EpisodeSpec(
        method="expert",
        scenario=ScenarioConfig(
            scenario_name=scenario_name, spawn_mode=SpawnMode.CLOSE, seed=seed
        ),
        time_limit=80.0,
    )
    executor = BatchExecutor(summary_stream=None)
    result = executor.run_specs([spec], method="expert-preset").results[0]
    assert result.success, f"expert failed on {scenario_name} seed {seed}: {result.status}"
