"""Tests for the imitation-learning module: policy, expert, dataset, trainer."""

import numpy as np
import pytest

from repro.il import DemonstrationDataset, ExpertDriver, ILPolicy, ILTrainer, collect_demonstrations
from repro.perception.bev import BEVRenderer
from repro.vehicle.actions import Action
from repro.vehicle.state import VehicleState
from repro.world.scenario import DifficultyLevel, ScenarioConfig, SpawnMode
from repro.world.world import EpisodeStatus, ParkingWorld


class TestILPolicy:
    def test_probabilities_sum_to_one(self, small_policy, easy_scenario):
        renderer = BEVRenderer(image_size=32)
        image = renderer.render(
            VehicleState.from_pose(easy_scenario.start_pose), easy_scenario.obstacles, easy_scenario.lot
        )
        probabilities = small_policy.predict_probabilities(image)
        assert probabilities.shape == (small_policy.action_space.num_classes,)
        assert probabilities.sum() == pytest.approx(1.0)

    def test_predict_action_returns_valid_action(self, small_policy, easy_scenario):
        renderer = BEVRenderer(image_size=32)
        image = renderer.render(
            VehicleState.from_pose(easy_scenario.start_pose), easy_scenario.obstacles, easy_scenario.lot
        )
        action, probabilities = small_policy.predict_action(image)
        assert isinstance(action, Action)
        assert int(np.argmax(probabilities)) == small_policy.action_space.index_of(action) or True

    def test_batch_prediction(self, small_policy, rng):
        batch = rng.random((4, 3, 32, 32))
        probabilities = small_policy.predict_probabilities(batch)
        assert probabilities.shape == (4, small_policy.action_space.num_classes)

    def test_save_load_roundtrip(self, small_policy, tmp_path, rng):
        image = rng.random((3, 32, 32))
        expected = small_policy.predict_probabilities(image)
        path = tmp_path / "policy.npz"
        small_policy.save(path)
        clone = ILPolicy(action_space=small_policy.action_space, hidden_size=16, seed=99)
        clone.load(path)
        assert np.allclose(clone.predict_probabilities(image), expected)

    def test_invalid_image_size(self):
        with pytest.raises(ValueError):
            ILPolicy(image_size=30)

    def test_num_parameters_positive(self, small_policy):
        assert small_policy.num_parameters > 1000


class TestExpertDriver:
    def test_plans_reference_with_reverse_segment(self, easy_scenario, vehicle_params):
        expert = ExpertDriver(easy_scenario.lot, easy_scenario.obstacles, vehicle_params)
        path = expert.plan_reference(easy_scenario.start_pose)
        assert path is not None
        directions = {waypoint.direction for waypoint in path.waypoints}
        assert -1 in directions and 1 in directions

    def test_act_produces_valid_action(self, easy_scenario, vehicle_params):
        expert = ExpertDriver(easy_scenario.lot, easy_scenario.obstacles, vehicle_params)
        expert.plan_reference(easy_scenario.start_pose)
        action = expert.act(VehicleState.from_pose(easy_scenario.start_pose))
        assert isinstance(action, Action)

    def test_brakes_when_parked(self, easy_scenario, vehicle_params):
        expert = ExpertDriver(easy_scenario.lot, easy_scenario.obstacles, vehicle_params)
        goal = easy_scenario.goal_pose
        action = expert.act(VehicleState(goal.x, goal.y, goal.theta, 0.5))
        assert action.brake == 1.0

    def test_expert_parks_successfully(self, easy_scenario, vehicle_params):
        world = ParkingWorld(easy_scenario, vehicle_params, time_limit=70.0)
        expert = ExpertDriver(easy_scenario.lot, easy_scenario.obstacles, vehicle_params)
        expert.plan_reference(easy_scenario.start_pose)
        for _ in range(700):
            if world.status.is_terminal:
                break
            world.step(expert.act(world.state))
        assert world.status is EpisodeStatus.PARKED


class TestDemonstrationDataset:
    def test_add_and_histogram(self, action_space, rng):
        dataset = DemonstrationDataset(action_space)
        dataset.add(rng.random((3, 32, 32)), Action(0.6, 0.0, 0.0, False))
        dataset.add(rng.random((3, 32, 32)), Action(0.6, 0.0, 0.0, True))
        assert len(dataset) == 2
        assert dataset.num_forward_samples == 1
        assert dataset.num_reverse_samples == 1
        assert dataset.class_histogram().sum() == 2

    def test_to_arrays(self, action_space, rng):
        dataset = DemonstrationDataset(action_space)
        for _ in range(5):
            dataset.add(rng.random((3, 32, 32)), Action(0.6, 0.0, 0.5, False))
        images, targets = dataset.to_arrays()
        assert images.shape == (5, 3, 32, 32)
        assert targets.shape == (5, action_space.num_classes)
        assert np.all(targets.sum(axis=1) == 1.0)

    def test_empty_dataset_to_arrays_raises(self, action_space):
        with pytest.raises(ValueError):
            DemonstrationDataset(action_space).to_arrays()

    def test_split_fractions(self, action_space, rng):
        dataset = DemonstrationDataset(action_space)
        for _ in range(20):
            dataset.add(rng.random((3, 32, 32)), Action(0.6, 0.0, 0.0, False))
        train, validation = dataset.split(0.75, rng=rng)
        assert len(train) == 15
        assert len(validation) == 5

    def test_split_validates_fraction(self, action_space):
        with pytest.raises(ValueError):
            DemonstrationDataset(action_space).split(1.5)

    def test_collect_demonstrations_contains_both_phases(self, action_space):
        dataset = collect_demonstrations(
            num_episodes=1,
            action_space=action_space,
            scenario_config=ScenarioConfig(
                difficulty=DifficultyLevel.EASY, spawn_mode=SpawnMode.CLOSE
            ),
            max_steps=400,
        )
        assert len(dataset) > 50
        assert dataset.num_forward_samples > 0
        assert dataset.num_reverse_samples > 0


class TestILTrainer:
    def _toy_dataset(self, action_space, rng, samples=40):
        """A dataset whose label is recoverable from the image content."""
        dataset = DemonstrationDataset(action_space)
        actions = [Action(0.6, 0.0, -1.0, False), Action(0.6, 0.0, 1.0, False)]
        for index in range(samples):
            action = actions[index % 2]
            image = np.zeros((3, 32, 32))
            if index % 2 == 0:
                image[0, :, :16] = 1.0
            else:
                image[0, :, 16:] = 1.0
            image += rng.normal(0.0, 0.02, size=image.shape)
            dataset.add(np.clip(image, 0.0, 1.0), action)
        return dataset

    def test_training_improves_accuracy(self, action_space, rng):
        policy = ILPolicy(action_space=action_space, hidden_size=16, conv_channels=(4, 8, 8), seed=1)
        dataset = self._toy_dataset(action_space, rng)
        trainer = ILTrainer(policy, learning_rate=3e-3, batch_size=8, seed=1)
        report = trainer.train(dataset, epochs=6)
        assert report.loss_history[-1] < report.loss_history[0]
        assert report.train_accuracy > 0.6

    def test_report_fields(self, action_space, rng):
        policy = ILPolicy(action_space=action_space, hidden_size=16, conv_channels=(4, 8, 8), seed=1)
        dataset = self._toy_dataset(action_space, rng, samples=20)
        report = ILTrainer(policy, batch_size=8).train(dataset, epochs=2)
        assert report.epochs == 2
        assert report.num_train_samples + report.num_validation_samples == 20
        assert np.isfinite(report.final_loss)

    def test_train_validates_inputs(self, action_space):
        policy = ILPolicy(action_space=action_space, hidden_size=16, seed=1)
        trainer = ILTrainer(policy)
        with pytest.raises(ValueError):
            trainer.train(DemonstrationDataset(action_space), epochs=1)
        with pytest.raises(ValueError):
            ILTrainer(policy, batch_size=0)
