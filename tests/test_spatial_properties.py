"""Property-based verification of the spatial stack (Hypothesis).

Four machine-checked invariants back the contracts the planners rely on:

1. **Conservatism** — the interpolated ESDF ``clearance`` never exceeds the
   exact brute-force polygon distance by more than ``slack``; subtracting
   ``slack`` therefore always yields a sound lower bound on true clearance.
2. **Bilinear/nearest-cell agreement** — interpolated queries stay within a
   cell diagonal of the underlying nearest-cell field sample, so the fast
   path cannot invent structure the raster does not have.
3. **SE(2) equivariance** — ``pose_clearance`` is invariant (within the
   combined discretisation tolerance) under rotating/translating scene and
   query together: the field is geometry, not coordinates.
4. **Time-slice conservatism** — the :class:`TimeGrid`'s ``clearance_at``
   never overestimates the exact distance to a patrol at *any* time inside
   the queried slice by more than its ``slack``.

The suite runs under a fixed, derandomized Hypothesis profile so CI results
are reproducible; set ``HYPOTHESIS_PROFILE=dev`` locally for fresh random
exploration.
"""

from __future__ import annotations

import math
import os

import numpy as np
import pytest

try:
    from hypothesis import given, settings, strategies as st
except ImportError:  # pragma: no cover - exercised only on minimal installs
    pytest.skip("hypothesis is not installed", allow_module_level=True)

from repro.geometry.collision import point_polygon_distance
from repro.geometry.se2 import SE2
from repro.geometry.shapes import AxisAlignedBox, OrientedBox
from repro.spatial import DistanceField, OccupancyGrid, SpatialIndex, TimeGrid
from repro.vehicle.params import VehicleParams
from repro.world.obstacles import StaticObstacle, make_patrolling_obstacle
from repro.world.parking_lot import ParkingLot, ParkingSpace

# Deterministic CI profile: derandomized, bounded example count.  The
# ``dev`` profile restores Hypothesis' default random exploration.
settings.register_profile("ci", derandomize=True, max_examples=25, deadline=None)
settings.register_profile("dev", max_examples=50, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


def _lot(length: float = 46.0, width: float = 24.0) -> ParkingLot:
    return ParkingLot(
        bounds=AxisAlignedBox(0.0, 0.0, length, width),
        spawn_region=AxisAlignedBox(2.0, 2.0, 6.0, 6.0),
        goal_space=ParkingSpace.from_target(
            "goal", SE2(length - 5.0, 5.0, math.pi / 2.0)
        ),
    )


def _true_distance(point: np.ndarray, lot: ParkingLot, polygons) -> float:
    bounds = lot.bounds
    if bounds.contains(point):
        boundary = min(
            point[0] - bounds.min_x,
            bounds.max_x - point[0],
            point[1] - bounds.min_y,
            bounds.max_y - point[1],
        )
    else:
        boundary = 0.0
    obstacle = min(
        (point_polygon_distance(point, polygon) for polygon in polygons),
        default=math.inf,
    )
    return min(boundary, obstacle)


@st.composite
def obstacle_boxes(draw, count_min=1, count_max=6, region=(4.0, 42.0, 4.0, 20.0)):
    count = draw(st.integers(count_min, count_max))
    boxes = []
    for _ in range(count):
        boxes.append(
            OrientedBox(
                draw(st.floats(region[0], region[1])),
                draw(st.floats(region[2], region[3])),
                draw(st.floats(0.6, 5.0)),
                draw(st.floats(0.6, 3.0)),
                draw(st.floats(0.0, math.pi)),
            )
        )
    return boxes


@st.composite
def query_points(draw, count=40):
    xs = [draw(st.floats(-2.0, 48.0)) for _ in range(count)]
    ys = [draw(st.floats(-2.0, 26.0)) for _ in range(count)]
    return np.stack([np.asarray(xs), np.asarray(ys)], axis=1)


class TestConservatismInvariant:
    @given(boxes=obstacle_boxes(), points=query_points())
    def test_clearance_never_overestimates_beyond_slack(self, boxes, points):
        lot = _lot()
        obstacles = [StaticObstacle(f"o{i}", box) for i, box in enumerate(boxes)]
        index = SpatialIndex(lot, obstacles)
        clearances = index.clearance(points)
        for point, clearance in zip(points, clearances):
            true = _true_distance(point, lot, index.obstacle_polygons)
            if true <= 0.0:
                continue
            assert clearance - true <= index.slack + 1e-9

    @given(boxes=obstacle_boxes(count_min=1, count_max=3))
    def test_points_inside_obstacles_report_nonpositive_bound(self, boxes):
        lot = _lot()
        obstacles = [StaticObstacle(f"o{i}", box) for i, box in enumerate(boxes)]
        index = SpatialIndex(lot, obstacles)
        centers = np.array([[box.center_x, box.center_y] for box in boxes])
        # The sound *lower bound* (clearance minus slack) must be
        # non-positive at every obstacle centre.
        assert ((index.clearance(centers) - index.slack) <= 1e-9).all()


class TestBilinearAgreesWithNearestCell:
    @given(boxes=obstacle_boxes(), points=query_points(count=30))
    def test_within_one_cell_diagonal_of_cell_sample(self, boxes, points):
        lot = _lot()
        grid = OccupancyGrid.from_lot(
            lot, [StaticObstacle(f"o{i}", box) for i, box in enumerate(boxes)]
        )
        field = DistanceField(grid)
        ny, nx = grid.occupied.shape
        clearances = field.clearance(points)
        for point, clearance in zip(points, clearances):
            ix = int(np.clip((point[0] - grid.origin_x) / grid.resolution, 0, nx - 1))
            iy = int(np.clip((point[1] - grid.origin_y) / grid.resolution, 0, ny - 1))
            nearest = field.distance[iy, ix]
            # Interpolation blends the four neighbours of a 1-Lipschitz
            # field sampled on a ``resolution`` lattice: it can differ from
            # the containing cell's sample by at most one cell diagonal.
            assert abs(clearance - nearest) <= grid.resolution * math.sqrt(2.0) + 1e-9


class TestPoseClearanceEquivariance:
    @given(
        boxes=obstacle_boxes(count_min=1, count_max=4, region=(30.0, 50.0, 30.0, 50.0)),
        angle=st.floats(-math.pi, math.pi),
        shift_x=st.floats(-5.0, 5.0),
        shift_y=st.floats(-5.0, 5.0),
        pose_x=st.floats(28.0, 52.0),
        pose_y=st.floats(28.0, 52.0),
        pose_theta=st.floats(-math.pi, math.pi),
    )
    def test_rigid_transform_of_scene_and_pose(
        self, boxes, angle, shift_x, shift_y, pose_x, pose_y, pose_theta
    ):
        """Transforming scene and query together preserves the bound.

        The lot is made large enough that its boundary never dominates the
        queried clearances, so the invariant isolates the obstacle field.
        Each scene's bound sits within ``[-2.5 * resolution, +slack]`` of
        the exact (transform-invariant) clearance, which bounds the
        disagreement between the two scenes.
        """
        big = 80.0
        lot = ParkingLot(
            bounds=AxisAlignedBox(0.0, 0.0, big, big),
            spawn_region=AxisAlignedBox(2.0, 2.0, 6.0, 6.0),
            goal_space=ParkingSpace.from_target("goal", SE2(40.0, 40.0, 0.0)),
        )
        pivot = SE2(40.0, 40.0, 0.0)
        transform = SE2(40.0 + shift_x, 40.0 + shift_y, angle)

        def moved_box(box: OrientedBox) -> OrientedBox:
            local = pivot.inverse().compose(box.pose)
            new_pose = transform.compose(local)
            return OrientedBox(new_pose.x, new_pose.y, box.length, box.width, new_pose.theta)

        params = VehicleParams()
        original = SpatialIndex(
            lot, [StaticObstacle(f"o{i}", b) for i, b in enumerate(boxes)], params
        )
        transformed = SpatialIndex(
            lot,
            [StaticObstacle(f"o{i}", moved_box(b)) for i, b in enumerate(boxes)],
            params,
        )

        pose = SE2(pose_x, pose_y, pose_theta)
        pose_local = pivot.inverse().compose(pose)
        pose_moved = transform.compose(pose_local)

        bound_a = float(
            original.pose_clearance(np.array([[pose.x, pose.y, pose.theta]]))[0]
        )
        bound_b = float(
            transformed.pose_clearance(
                np.array([[pose_moved.x, pose_moved.y, pose_moved.theta]])
            )[0]
        )
        resolution = original.field.resolution
        tolerance = original.slack + 2.5 * resolution + 1e-6
        assert abs(bound_a - bound_b) <= tolerance


@st.composite
def patrols(draw):
    num_points = draw(st.integers(2, 4))
    xs = [draw(st.floats(8.0, 38.0)) for _ in range(num_points)]
    ys = [draw(st.floats(5.0, 19.0)) for _ in range(num_points)]
    waypoints = list(zip(xs, ys))
    return make_patrolling_obstacle(
        "patrol",
        waypoints,
        speed=draw(st.floats(0.2, 1.4)),
        length=draw(st.floats(0.6, 2.0)),
        width=draw(st.floats(0.5, 1.2)),
        phase=draw(st.floats(0.0, 20.0)),
    )


class TestTimeGridConservatism:
    @given(
        patrol=patrols(),
        times=st.lists(st.floats(0.0, 60.0), min_size=8, max_size=8),
        px=st.lists(st.floats(0.0, 46.0), min_size=8, max_size=8),
        py=st.lists(st.floats(0.0, 24.0), min_size=8, max_size=8),
    )
    def test_clearance_at_never_overestimates_at_any_slice_time(
        self, patrol, times, px, py
    ):
        lot = _lot()
        timegrid = TimeGrid(lot, [patrol], horizon=40.0, slice_dt=0.8)
        points = np.stack([np.asarray(px), np.asarray(py)], axis=1)
        clearances = timegrid.clearance_at(points, np.asarray(times))
        for point, clearance, time in zip(points, clearances, times):
            moved = patrol.at_time(float(time))
            true = point_polygon_distance(point, moved.box.to_polygon())
            if true <= 0.0:
                continue
            assert clearance - true <= timegrid.slack + 1e-9

    @given(patrol=patrols(), time=st.floats(0.0, 120.0))
    def test_patrol_position_itself_is_never_reported_clear(self, patrol, time):
        """The sound lower bound at the patrol's own centre is non-positive,
        including beyond the horizon (corridor fallback)."""
        lot = _lot()
        timegrid = TimeGrid(lot, [patrol], horizon=40.0, slice_dt=0.8)
        position, _ = patrol.position_at(float(time))
        bound = float(
            timegrid.clearance_at(position[None, :], float(time))[0]
        ) - timegrid.slack
        assert bound <= 1e-9


class TestConflictThreshold:
    """The footprint-derived default of TimeGrid.time_to_conflict."""

    def _timegrid(self):
        from repro.world import DifficultyLevel, ScenarioConfig, SpawnMode, build_scenario
        from repro.spatial import TimeGrid

        scenario = build_scenario(
            ScenarioConfig(
                scenario_name="legacy",
                difficulty=DifficultyLevel.NORMAL,
                spawn_mode=SpawnMode.REMOTE,
                seed=0,
            )
        )
        return TimeGrid.from_scenario(scenario)

    def test_threshold_derived_from_footprint(self):
        import math

        timegrid = self._timegrid()
        params = timegrid.vehicle_params
        expected = (
            params.center_offset
            + math.hypot(params.length, params.width) / 2.0
            + timegrid.slack
        )
        assert timegrid.conflict_threshold == pytest.approx(expected)
        assert timegrid.conflict_threshold > 0.6  # no longer the old constant

    def test_threshold_covers_every_corner_from_rear_axle(self):
        """The ring must contain the farthest body corner seen from the pose point."""
        import math

        timegrid = self._timegrid()
        params = timegrid.vehicle_params
        farthest_corner = math.hypot(
            params.length - params.rear_overhang, params.width / 2.0
        )
        assert timegrid.conflict_threshold >= farthest_corner

    def test_default_threshold_flags_earlier_than_old_constant(self):
        """The wider body-derived ring can only move conflicts earlier."""
        import numpy as np

        timegrid = self._timegrid()
        position = np.array(timegrid.obstacles[0].waypoints[0])
        derived = timegrid.time_to_conflict(position, start_time=0.0)
        legacy = timegrid.time_to_conflict(position, start_time=0.0, threshold=0.6)
        assert derived is not None
        if legacy is not None:
            assert derived <= legacy

    def test_explicit_threshold_still_honoured(self):
        import numpy as np

        timegrid = self._timegrid()
        far = np.array([0.0, 0.0])
        assert timegrid.time_to_conflict(far, threshold=1e-3) is None
