"""Multi-ego coordination: shared-world scenarios, ledger hand-off, serve smoke.

The ``multi-ego-2`` preset builds one *per-ego view* of a shared lot: the
two views of one seed must agree byte-for-byte on every obstacle (the
shared world both egos step through), while each view has its own goal
slot and spawn.  The serve smoke drives both egos through
``ServeApp.submit_fleet(..., coordinate=True)`` — the repo's first
multi-vehicle episode — and checks the reservation hand-off end to end:
both park, zero ego–ego footprint overlaps, deterministic trace hashes.
"""

from __future__ import annotations

import asyncio
import math

import numpy as np

import repro.world.presets  # noqa: F401 - registers the built-in presets
from repro.api import EpisodeSpec
from repro.api.events import RESERVATION_TOPIC
from repro.api.specs import TimeLayerSpec
from repro.geometry.collision import polygon_polygon_collision
from repro.geometry.shapes import OrientedBox
from repro.middleware import MessageBus
from repro.serve import ServeApp
from repro.serve.fleet import run_specs_fleet
from repro.vehicle.params import VehicleParams
from repro.world.layouts import perpendicular_layout
from repro.world.scenario import (
    DifficultyLevel,
    ScenarioConfig,
    SpawnMode,
    build_layout_scenario,
    build_scenario,
    scenario_to_dict,
)
from repro.world.world import EpisodeStatus


def ego_spec(ego_index: int, spawn_mode: SpawnMode, seed: int = 3) -> EpisodeSpec:
    return EpisodeSpec(
        method="expert",
        scenario=ScenarioConfig(
            scenario_name="multi-ego-2",
            seed=seed,
            difficulty=DifficultyLevel.NORMAL,
            spawn_mode=spawn_mode,
            layout_params={"ego_index": ego_index},
        ),
        time_layer=TimeLayerSpec(enabled=True),
        time_limit=120.0,
    )


def cohort_specs(seed: int = 3) -> list:
    return [ego_spec(0, SpawnMode.CLOSE, seed), ego_spec(1, SpawnMode.REMOTE, seed)]


def footprint_boxes(outcome, params: VehicleParams) -> dict:
    """Body-centre footprint per step, keyed by the step's time stamp."""
    offset = params.center_offset
    return {
        round(event.stamp, 9): OrientedBox(
            event.state.x + offset * math.cos(event.state.heading),
            event.state.y + offset * math.sin(event.state.heading),
            params.length,
            params.width,
            event.state.heading,
        )
        for event in outcome.events
    }


def ego_ego_overlaps(outcome_a, outcome_b) -> int:
    """Exact SAT overlap count between the two egos' bodies at equal stamps.

    After the shorter episode ends, its ego holds its final (parked) pose
    against the rest of the longer one — parked cars do not vanish.
    """
    params = VehicleParams()
    boxes_a = footprint_boxes(outcome_a, params)
    boxes_b = footprint_boxes(outcome_b, params)
    hits = 0
    for stamp in set(boxes_a) & set(boxes_b):
        if polygon_polygon_collision(
            boxes_a[stamp].to_polygon(), boxes_b[stamp].to_polygon()
        ):
            hits += 1
    short, long_ = (
        (boxes_a, boxes_b) if max(boxes_a) <= max(boxes_b) else (boxes_b, boxes_a)
    )
    parked = short[max(short)].to_polygon()
    for stamp in (s for s in long_ if s > max(short)):
        if polygon_polygon_collision(parked, long_[stamp].to_polygon()):
            hits += 1
    return hits


class TestSharedWorldScenario:
    def test_ego_views_agree_on_every_obstacle(self):
        dicts = [
            scenario_to_dict(build_scenario(ego_spec(index, SpawnMode.CLOSE).scenario))
            for index in (0, 1)
        ]
        assert dicts[0]["obstacles"] == dicts[1]["obstacles"]
        assert dicts[0]["start_pose"] != dicts[1]["start_pose"]
        assert dicts[0]["lot"]["goal"]["pose"] != dicts[1]["lot"]["goal"]["pose"]

    def test_reserved_slots_get_no_parked_car(self):
        for index in (0, 1):
            scenario = build_scenario(ego_spec(index, SpawnMode.CLOSE).scenario)
            reserved_boxes = [
                scenario.layout.build().slots[slot].box.to_polygon() for slot in (2, 5)
            ]
            for obstacle in scenario.static_obstacles:
                polygon = obstacle.box.to_polygon()
                assert not any(
                    polygon_polygon_collision(polygon, slot_box)
                    for slot_box in reserved_boxes
                )

    def test_empty_reserved_tuple_is_byte_identical(self):
        layout = perpendicular_layout(aisle_width=8.0)
        config = ScenarioConfig(
            scenario_name="perpendicular-easy",
            seed=11,
            difficulty=DifficultyLevel.NORMAL,
        )
        default = scenario_to_dict(build_layout_scenario(layout, config))
        explicit = scenario_to_dict(
            build_layout_scenario(layout, config, reserved_slot_indices=())
        )
        assert default == explicit

    def test_out_of_range_reserved_slot_rejected(self):
        layout = perpendicular_layout(aisle_width=8.0)
        config = ScenarioConfig(seed=0)
        try:
            build_layout_scenario(layout, config, reserved_slot_indices=(99,))
        except ValueError as error:
            assert "reserved slot index" in str(error)
        else:  # pragma: no cover - guard
            raise AssertionError("expected ValueError for out-of-range slot")

    def test_ego_index_out_of_range_rejected(self):
        try:
            build_scenario(
                ScenarioConfig(
                    scenario_name="multi-ego-2", layout_params={"ego_index": 7}
                )
            )
        except ValueError as error:
            assert "ego_index" in str(error)
        else:  # pragma: no cover - guard
            raise AssertionError("expected ValueError for bad ego_index")


class TestCoordinatedFleet:
    def test_coordinated_cohort_parks_without_ego_ego_contact(self):
        outcomes, _ = run_specs_fleet(cohort_specs(), coordinate=True)
        assert [o.result.status for o in outcomes] == [EpisodeStatus.PARKED] * 2
        # PARKED status certifies zero ego-patrol collisions; the ego-ego
        # channel is invisible to each session's world, so check it here.
        assert ego_ego_overlaps(*outcomes) == 0
        assert all(o.result.min_obstacle_distance > 0.0 for o in outcomes)

    def test_coordination_changes_the_yielding_ego(self):
        coordinated, _ = run_specs_fleet(cohort_specs(), coordinate=True)
        solo, _ = run_specs_fleet(cohort_specs(), coordinate=False)
        # Ego 0 outranks everyone, so its episode matches the solo run
        # bitwise; ego 1 yields to ego 0's committed window and diverges.
        assert coordinated[0].result.trace_hash == solo[0].result.trace_hash
        assert coordinated[1].result.trace_hash != solo[1].result.trace_hash


class TestServeSmoke:
    def test_submit_fleet_coordinated_smoke(self):
        async def body():
            bus = MessageBus()
            async with ServeApp(max_concurrency=2, bus=bus) as app:
                first = app.submit_fleet(cohort_specs(), coordinate=True)
                outcomes = [await handle.outcome() for handle in first]
                second = app.submit_fleet(cohort_specs(), coordinate=True)
                repeat = [await handle.outcome() for handle in second]
            return bus, first, outcomes, repeat

        bus, handles, outcomes, repeat = asyncio.run(body())
        assert [o.result.status for o in outcomes] == [EpisodeStatus.PARKED] * 2
        assert ego_ego_overlaps(*outcomes) == 0
        # Deterministic: the repeat cohort recomputes (coordinated cohorts
        # bypass the spec-keyed result cache — no handle may be a replay)
        # yet lands on bitwise-identical traces.
        assert not any(handle.from_cache for handle in handles)
        for first_outcome, repeat_outcome in zip(outcomes, repeat):
            assert first_outcome.result.trace_hash == repeat_outcome.result.trace_hash
            assert np.array_equal(
                first_outcome.trace.positions, repeat_outcome.trace.positions
            )
        # Each session republished its committed window on its own scope.
        for handle in handles:
            assert bus.publish_count(f"{handle.scope}/{RESERVATION_TOPIC}") > 0
