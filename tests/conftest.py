"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.il.policy import ILPolicy
from repro.vehicle.actions import ActionSpace
from repro.vehicle.params import VehicleParams
from repro.world.scenario import DifficultyLevel, ScenarioConfig, SpawnMode, build_scenario


@pytest.fixture(scope="session")
def vehicle_params() -> VehicleParams:
    return VehicleParams()


@pytest.fixture(scope="session")
def action_space() -> ActionSpace:
    return ActionSpace()


@pytest.fixture(scope="session")
def small_policy(action_space) -> ILPolicy:
    """An untrained (but functional) IL policy for structural tests."""
    return ILPolicy(action_space=action_space, image_size=32, hidden_size=16, seed=0)


@pytest.fixture(scope="session")
def easy_scenario():
    return build_scenario(
        ScenarioConfig(difficulty=DifficultyLevel.EASY, spawn_mode=SpawnMode.REMOTE, seed=1)
    )


@pytest.fixture(scope="session")
def normal_scenario():
    return build_scenario(
        ScenarioConfig(difficulty=DifficultyLevel.NORMAL, spawn_mode=SpawnMode.REMOTE, seed=1)
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
