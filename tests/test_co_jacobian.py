"""Analytic CO Jacobians: correctness against numerical differentiation and
bit-parity of the retained finite-difference solver path.

Three layers of guarantees:

* the rollout sensitivities of
  :meth:`~repro.vehicle.kinematics.AckermannModel.rollout_with_sensitivities`
  match central differences of the rollout (away from the clip kinks),
* :meth:`~repro.co.mpc.MPCProblem.residuals_and_jacobian` reproduces the
  residual vector bitwise and its Jacobian matches central differences of
  :meth:`~repro.co.mpc.MPCProblem.residuals` for every residual block,
* ``GaussNewtonSolver(jacobian="fd")`` reproduces the pre-analytic solver's
  trajectories bit for bit (the FD path is the frozen reference oracle).
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.co.constraints import FieldConstraintStack, ObstaclePrediction
from repro.co.mpc import MPCProblem
from repro.co.solver import GaussNewtonSolver
from repro.spatial import DistanceField, OccupancyGrid
from repro.vehicle.kinematics import AckermannModel
from repro.vehicle.params import VehicleParams
from repro.vehicle.state import VehicleState

HORIZON = 6
PARAMS = VehicleParams()
MODEL = AckermannModel(PARAMS, dt=0.25)

# Strategies that keep the sampled problems strictly inside the smooth
# region: controls well within the box bounds and velocities that cannot
# reach the speed clips within the horizon, so the central differences
# below never straddle a clip kink.
accelerations = st.floats(-0.8, 0.8)
steers = st.floats(-0.5, 0.5)
controls_strategy = st.lists(
    st.tuples(accelerations, steers), min_size=HORIZON, max_size=HORIZON
).map(np.array)
state_strategy = st.builds(
    VehicleState,
    x=st.floats(-1.0, 1.0),
    y=st.floats(-1.0, 1.0),
    heading=st.floats(-1.0, 1.0),
    velocity=st.floats(-0.5, 1.5),
)


def _numerical_jacobian(function, controls, step=1e-6):
    """Central-difference Jacobian of a vector function of the controls."""
    flat = controls.ravel()
    base = function(controls)
    jacobian = np.zeros((base.shape[0], flat.shape[0]))
    for index in range(flat.shape[0]):
        forward = flat.copy()
        forward[index] += step
        backward = flat.copy()
        backward[index] -= step
        jacobian[:, index] = (
            function(forward.reshape(controls.shape))
            - function(backward.reshape(controls.shape))
        ) / (2.0 * step)
    return jacobian


def _tracking_problem(state, obstacle_predictions=(), field_constraint=None):
    rng = np.random.default_rng(11)
    references = np.cumsum(rng.uniform(0.05, 0.3, size=(HORIZON, 2)), axis=0)
    headings = rng.uniform(-0.3, 0.3, size=HORIZON)
    return MPCProblem(
        model=MODEL,
        initial_state=state,
        reference_positions=references,
        reference_headings=headings,
        obstacle_predictions=list(obstacle_predictions),
        field_constraint=field_constraint,
    )


class TestRolloutSensitivities:
    @settings(max_examples=60, deadline=None)
    @given(state=state_strategy, controls=controls_strategy)
    def test_matches_central_differences(self, state, controls):
        states, sensitivities = MODEL.rollout_with_sensitivities(state, controls)
        np.testing.assert_array_equal(
            states, MODEL.rollout_controls_array(state, controls)
        )

        def rollout_future(u):
            return MODEL.rollout_controls_array(state, u)[1:].ravel()

        numerical = _numerical_jacobian(rollout_future, controls)
        # (H, H, 4, 2) -> rows (H * 4) x columns (H * 2), stage-major.
        analytic = sensitivities.transpose(0, 2, 1, 3).reshape(
            HORIZON * 4, HORIZON * 2
        )
        # Headings can wrap between the +/- step evaluations; exclude the
        # rare wrapped rows rather than the whole example.
        mismatch = np.abs(analytic - numerical)
        assume(not np.any(mismatch > 1.0))
        np.testing.assert_allclose(analytic, numerical, atol=5e-6)

    def test_clipped_controls_have_zero_columns(self):
        state = VehicleState(x=0.0, y=0.0, heading=0.0, velocity=0.5)
        controls = np.zeros((HORIZON, 2))
        controls[2] = [PARAMS.max_acceleration + 1.0, 0.0]  # accel clipped
        controls[4] = [0.0, PARAMS.max_steer + 1.0]  # steer clipped
        _, sensitivities = MODEL.rollout_with_sensitivities(state, controls)
        assert np.all(sensitivities[:, 2, :, 0] == 0.0)
        assert np.all(sensitivities[:, 4, :, 1] == 0.0)
        # Unclipped columns stay live.
        assert np.any(sensitivities[:, 0, :, 0] != 0.0)

    def test_batched_rollout_matches_scalar(self):
        rng = np.random.default_rng(3)
        batch = 8
        # Deliberately includes out-of-box controls so the clips engage.
        controls = rng.uniform(-3.0, 3.0, size=(batch, HORIZON, 2))
        initial = rng.uniform(-1.0, 1.0, size=(batch, 4))
        states = MODEL.rollout_batch(initial, controls)
        _, sensitivities = MODEL.rollout_batch_with_sensitivities(initial, controls)
        for index in range(batch):
            state = VehicleState(*initial[index])
            expected = MODEL.rollout_controls_array(state, controls[index])
            np.testing.assert_allclose(states[index], expected, atol=1e-12)
            _, expected_sens = MODEL.rollout_with_sensitivities(state, controls[index])
            np.testing.assert_allclose(sensitivities[index], expected_sens, atol=1e-12)


class TestResidualJacobian:
    @settings(max_examples=40, deadline=None)
    @given(state=state_strategy, controls=controls_strategy)
    def test_tracking_blocks_match_central_differences(self, state, controls):
        problem = _tracking_problem(state)
        residuals, jacobian = problem.residuals_and_jacobian(controls)
        np.testing.assert_array_equal(residuals, problem.residuals(controls))
        numerical = _numerical_jacobian(problem.residuals, controls)
        mismatch = np.abs(jacobian - numerical)
        assume(not np.any(mismatch > 1.0))  # heading-wrap straddle
        np.testing.assert_allclose(jacobian, numerical, atol=5e-6)

    @settings(max_examples=40, deadline=None)
    @given(state=state_strategy, controls=controls_strategy)
    def test_circle_hinge_block_matches_central_differences(self, state, controls):
        rng = np.random.default_rng(17)
        circles = np.tile(rng.uniform(0.5, 2.5, size=(1, 2, 2)), (HORIZON, 1, 1))
        prediction = ObstaclePrediction(
            circle_positions=circles, circle_radius=0.4, safety_margin=0.1
        )
        problem = _tracking_problem(state, obstacle_predictions=[prediction])
        residuals, jacobian = problem.residuals_and_jacobian(controls)
        np.testing.assert_array_equal(residuals, problem.residuals(controls))
        # Keep every hinge strictly on one side of its kink so the central
        # difference below is two-sided smooth.
        states = problem.rollout(controls)
        centers = problem._ego_circle_centers(states)
        clearance = prediction.required_clearance(float(problem.ego_circle_radius))
        deltas = circles[:, :, None, :] - centers[:, None, :, :]
        distances = np.linalg.norm(deltas, axis=-1)
        assume(np.all(np.abs(clearance - distances) > 1e-3))
        numerical = _numerical_jacobian(problem.residuals, controls)
        mismatch = np.abs(jacobian - numerical)
        assume(not np.any(mismatch > 1.0))
        np.testing.assert_allclose(jacobian, numerical, atol=5e-6)

    def test_field_hinge_block_matches_central_differences(self):
        # A single occupied block in a coarse grid: the ESDF is smooth away
        # from cell boundaries and the hinge is active near the obstacle.
        occupied = np.zeros((40, 40), dtype=bool)
        occupied[18:22, 18:22] = True
        grid = OccupancyGrid(origin_x=-5.0, origin_y=-5.0, resolution=0.25, occupied=occupied)
        stack = FieldConstraintStack(
            static_field=DistanceField(grid), static_clearance=1.2
        )
        state = VehicleState(x=-2.0, y=-0.4, heading=0.2, velocity=1.0)
        problem = _tracking_problem(state, field_constraint=stack)
        controls = np.tile([0.4, 0.1], (HORIZON, 1))
        residuals, jacobian = problem.residuals_and_jacobian(controls)
        np.testing.assert_array_equal(residuals, problem.residuals(controls))
        numerical = _numerical_jacobian(problem.residuals, controls, step=1e-7)
        np.testing.assert_allclose(jacobian, numerical, atol=1e-4)


class _ReferenceGaussNewton:
    """Verbatim copy of the pre-analytic solver loop (the frozen oracle)."""

    def __init__(self, max_iterations=12, tolerance=1e-4, damping=1e-2,
                 finite_difference_step=1e-4, max_line_search_steps=6):
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.damping = damping
        self.finite_difference_step = finite_difference_step
        self.max_line_search_steps = max_line_search_steps

    def solve(self, problem, initial_controls=None):
        horizon = problem.horizon
        bounds = problem.bounds
        if initial_controls is None:
            controls = np.zeros((horizon, 2))
        else:
            controls = np.asarray(initial_controls, dtype=float).reshape(horizon, 2).copy()
        controls = bounds.clip(controls)
        residuals = problem.residuals(controls)
        objective = float(residuals @ residuals)
        converged = False
        iteration = 0
        damping = self.damping
        for iteration in range(1, self.max_iterations + 1):
            jacobian = self._jacobian(problem, controls, residuals)
            gradient = jacobian.T @ residuals
            hessian = jacobian.T @ jacobian
            improved = False
            for _ in range(self.max_line_search_steps):
                regularised = hessian + damping * np.eye(hessian.shape[0])
                try:
                    step = np.linalg.solve(regularised, -gradient)
                except np.linalg.LinAlgError:
                    damping *= 10.0
                    continue
                candidate = bounds.clip(controls + step.reshape(horizon, 2))
                candidate_residuals = problem.residuals(candidate)
                candidate_objective = float(candidate_residuals @ candidate_residuals)
                if candidate_objective < objective - 1e-12:
                    relative = (objective - candidate_objective) / max(objective, 1e-9)
                    controls = candidate
                    residuals = candidate_residuals
                    objective = candidate_objective
                    damping = max(damping * 0.5, 1e-6)
                    improved = True
                    if relative < self.tolerance:
                        converged = True
                    break
                damping *= 10.0
            if not improved:
                converged = True
            if converged:
                break
        return controls, objective, iteration, converged

    def _jacobian(self, problem, controls, residuals):
        flat = controls.ravel()
        jacobian = np.zeros((residuals.shape[0], flat.shape[0]))
        step = self.finite_difference_step
        for index in range(flat.shape[0]):
            perturbed = flat.copy()
            perturbed[index] += step
            jacobian[:, index] = (
                problem.residuals(perturbed.reshape(controls.shape)) - residuals
            ) / step
        return jacobian


class TestFiniteDifferenceParity:
    """``jacobian="fd"`` must stay bit-identical to the pre-analytic solver."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_fd_path_reproduces_reference_solver_bitwise(self, seed):
        rng = np.random.default_rng(seed)
        state = VehicleState(
            x=rng.uniform(-1, 1),
            y=rng.uniform(-1, 1),
            heading=rng.uniform(-0.5, 0.5),
            velocity=rng.uniform(-0.3, 0.8),
        )
        circles = np.tile(rng.uniform(1.0, 3.0, size=(1, 2, 2)), (HORIZON, 1, 1))
        prediction = ObstaclePrediction(
            circle_positions=circles, circle_radius=0.4, safety_margin=0.1
        )
        problem = _tracking_problem(state, obstacle_predictions=[prediction])
        warm = rng.uniform(-0.3, 0.3, size=(HORIZON, 2))

        result = GaussNewtonSolver(jacobian="fd").solve(problem, initial_controls=warm)
        controls, objective, iterations, converged = _ReferenceGaussNewton().solve(
            problem, initial_controls=warm
        )
        np.testing.assert_array_equal(result.controls, controls)
        assert result.objective == objective
        assert result.iterations == iterations
        assert result.converged == converged

    def test_analytic_is_default_and_validated(self):
        assert GaussNewtonSolver().jacobian == "analytic"
        with pytest.raises(ValueError, match="jacobian"):
            GaussNewtonSolver(jacobian="autodiff")

    def test_analytic_reaches_comparable_objective(self):
        rng = np.random.default_rng(5)
        state = VehicleState(x=0.0, y=0.0, heading=0.1, velocity=0.3)
        problem = _tracking_problem(state)
        warm = rng.uniform(-0.2, 0.2, size=(HORIZON, 2))
        analytic = GaussNewtonSolver(jacobian="analytic").solve(problem, initial_controls=warm)
        fd = GaussNewtonSolver(jacobian="fd").solve(problem, initial_controls=warm)
        assert analytic.objective <= fd.objective * 1.05 + 1e-9
