"""Warm worker pool: parity, reuse, cache statistics, lifecycle.

The pool's contract extends the executor backend contract: a persistent
pool of spawn workers with shared-memory spatial caches must produce
bitwise-identical, identically-ordered results to a cold process pool and
to the thread backend — warmth and caching are pure throughput.
"""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro.api import BatchExecutor, BatchSpec, EpisodeSpec
from repro.serve.pool import WarmPool
from repro.world.scenario import DifficultyLevel, ScenarioConfig, SpawnMode


def small_batch(num_seeds: int = 4, max_steps: int = 8) -> BatchSpec:
    return BatchSpec(
        method="expert",
        seeds=tuple(range(num_seeds)),
        difficulties=(DifficultyLevel.EASY,),
        spawn_mode=SpawnMode.CLOSE,
        scenario_name="perpendicular-easy",
        max_steps=max_steps,
    )


def repeated_specs(copies: int = 3, max_steps: int = 8):
    """Several episodes of one scenario — the shareable-raster case."""
    spec = EpisodeSpec(
        method="expert",
        scenario=ScenarioConfig(scenario_name="perpendicular-easy", seed=2),
        max_steps=max_steps,
    )
    # Distinct step caps keep the episode-result memo from collapsing them
    # while the underlying scenario (and its rasters) stays identical.
    return [spec] + [
        EpisodeSpec(
            method="expert",
            scenario=ScenarioConfig(scenario_name="perpendicular-easy", seed=2),
            max_steps=max_steps + extra,
        )
        for extra in range(1, copies)
    ]


class TestWarmPoolParity:
    def test_warm_cold_and_thread_results_bitwise_identical(self):
        spec = small_batch()
        thread = BatchExecutor(backend="thread", max_workers=2, summary_stream=None).run(spec)
        with BatchExecutor(backend="process", max_workers=2, summary_stream=None) as warm:
            first = warm.run(spec)
            second = warm.run(spec)  # same pool, now-warm caches
        with BatchExecutor(backend="process", max_workers=2, summary_stream=None) as cold:
            fresh = cold.run(spec)

        for outcome in (first, second, fresh):
            assert outcome.results == thread.results
            assert [r.seed for r in outcome.results] == list(spec.seeds)
            for trace, reference in zip(outcome.traces, thread.traces):
                assert np.array_equal(trace.positions, reference.positions)
                assert np.array_equal(trace.steering, reference.steering)

    def test_second_batch_hits_spatial_cache(self):
        with BatchExecutor(backend="process", max_workers=2, summary_stream=None) as executor:
            first = executor.run_specs(repeated_specs())
            second = executor.run_specs(repeated_specs())
        stats = first.summary
        assert stats.spatial_cache_misses > 0  # first contact builds
        assert second.summary.spatial_cache_hits > 0  # warm workers reuse
        assert second.summary.spatial_cache_misses == 0
        assert 0.0 < second.summary.spatial_cache_hit_rate <= 1.0


class TestResultReuse:
    def test_repeated_specs_are_answered_from_the_memo(self):
        spec = small_batch(num_seeds=2)
        specs = list(spec.episode_specs())
        executor = BatchExecutor(
            backend="thread", max_workers=2, reuse_results=True, summary_stream=None
        )
        first = executor.run_specs(specs + specs)
        assert first.summary.num_unique_episodes == 2
        assert first.summary.result_cache_hits == 2
        assert first.summary.cache_hit_rate == 0.5
        # Duplicate positions carry the exact owner outcome.
        assert first.results[0] == first.results[2]
        assert first.results[1] == first.results[3]

        second = executor.run_specs(specs)
        assert second.summary.num_unique_episodes == 0
        assert second.summary.result_cache_hits == 2
        assert second.summary.cache_hit_rate == 1.0
        assert second.results == first.results[:2]

    def test_reuse_matches_fresh_computation_bitwise(self):
        spec = small_batch(num_seeds=3)
        reference = BatchExecutor(backend="thread", max_workers=2, summary_stream=None).run(spec)
        memoized = BatchExecutor(
            backend="thread", max_workers=2, reuse_results=True, summary_stream=None
        )
        memoized.run(spec)
        replayed = memoized.run(spec)  # fully cache-served
        assert replayed.summary.cache_hit_rate == 1.0
        assert replayed.results == reference.results
        for trace, fresh_trace in zip(replayed.traces, reference.traces):
            assert np.array_equal(trace.positions, fresh_trace.positions)

    def test_reuse_disabled_reports_all_unique(self):
        executor = BatchExecutor(backend="thread", max_workers=2, summary_stream=None)
        outcome = executor.run_specs(list(small_batch(num_seeds=2).episode_specs()))
        assert outcome.summary.num_unique_episodes == 2
        assert outcome.summary.result_cache_hits == 0
        assert outcome.summary.cache_hit_rate == 0.0


class TestPoolLifecycle:
    def test_close_is_idempotent_and_sweeps_segments(self):
        pool = WarmPool(2)
        prefix = pool.shm_prefix
        specs = repeated_specs(copies=2)
        pairs = pool.run_specs(specs)
        assert len(pairs) == 2
        pool.close()
        assert pool.closed
        assert glob.glob(f"/dev/shm/{prefix}*") == []
        pool.close()  # second close is a no-op

    def test_closed_pool_rejects_work(self):
        pool = WarmPool(1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.run_specs(repeated_specs(copies=1))

    def test_executor_recreates_pool_after_close(self):
        spec = small_batch(num_seeds=2)
        executor = BatchExecutor(backend="process", max_workers=2, summary_stream=None)
        first = executor.run(spec)
        executor.close()
        second = executor.run(spec)  # transparently re-warms
        executor.close()
        assert first.results == second.results

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            WarmPool(0)
