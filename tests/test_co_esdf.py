"""Property-style tests for the ESDF-gradient CO constraint stack.

The field formulation replaces per-(obstacle circle x ego circle x stage)
hinge residuals with one hinge per (stage, ego circle) against the static
distance field and the per-stage dynamic time slices.  These tests pin the
pieces the solver relies on: the fused layer-indexed gather matching the
per-field queries exactly, the builder's classification of detections into
field-covered vs residual circles, the residual-stack bookkeeping, and the
hinge/min-clearance algebra inside :class:`MPCProblem`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ControllerContext, EpisodeSpec, TimeLayerSpec
from repro.co import (
    CollisionConstraintSet,
    COController,
    FieldConstraintStack,
    GaussNewtonSolver,
    MPCProblem,
)
from repro.perception.detector import Detection, ObjectDetector
from repro.geometry.shapes import OrientedBox
from repro.vehicle.kinematics import AckermannModel
from repro.vehicle.state import VehicleState
from repro.world import DifficultyLevel, ScenarioConfig, SpawnMode, build_scenario
from repro.world.world import ParkingWorld


@pytest.fixture(scope="module")
def patrol_context():
    spec = EpisodeSpec(
        method="co",
        scenario=ScenarioConfig(
            scenario_name="legacy",
            difficulty=DifficultyLevel.NORMAL,
            spawn_mode=SpawnMode.REMOTE,
            seed=0,
        ),
        time_layer=TimeLayerSpec(enabled=True),
    )
    scenario = build_scenario(spec.scenario)
    return scenario, ControllerContext(scenario, time_layer=spec.time_layer, dt=spec.dt)


def _detections(scenario, time=0.0):
    return ObjectDetector().detect(
        VehicleState.from_pose(scenario.start_pose), scenario.obstacles, time=time
    )


class TestBuilderClassification:
    def test_static_detections_leave_the_circle_list(self, patrol_context):
        scenario, context = patrol_context
        constraint_set = CollisionConstraintSet(
            context.vehicle_params,
            spatial_index=context.spatial_index,
            timegrid=context.timegrid,
        )
        detections = _detections(scenario)
        predictions, stack = constraint_set.build(
            detections, 0.25, 10, ego_position=np.array(scenario.start_pose.position),
            start_time=0.0,
        )
        assert stack is not None
        assert stack.static_field is context.spatial_index.field
        static_ids = {o.obstacle_id for o in context.spatial_index.obstacles}
        leftover_ids = {p.obstacle_id for p in predictions}
        assert not (leftover_ids & static_ids), "static obstacles must live in the field"

    def test_patrol_detections_become_dynamic_slices(self, patrol_context):
        scenario, context = patrol_context
        constraint_set = CollisionConstraintSet(
            context.vehicle_params,
            spatial_index=context.spatial_index,
            timegrid=context.timegrid,
        )
        patrol = context.timegrid.obstacles[0]
        detection = Detection(
            box=patrol.box,
            velocity=np.array([0.0, patrol.speed]),
            confidence=1.0,
            obstacle_id=patrol.obstacle_id,
        )
        predictions, stack = constraint_set.build(
            [detection], 0.25, 10, ego_position=np.array([0.0, 0.0]), start_time=1.0
        )
        assert predictions == []
        assert stack.dynamic_fields is not None
        assert len(stack.dynamic_fields) == 10
        # Moving standoff largely subsumed by the swept-window raster.
        assert stack.dynamic_clearance < stack.static_clearance + constraint_set.moving_standoff

    def test_false_positives_stay_as_circles(self, patrol_context):
        scenario, context = patrol_context
        constraint_set = CollisionConstraintSet(
            context.vehicle_params,
            spatial_index=context.spatial_index,
            timegrid=context.timegrid,
        )
        ghost = Detection(
            box=OrientedBox(5.0, 5.0, 1.0, 1.0, 0.0),
            velocity=np.zeros(2),
            confidence=0.4,
            obstacle_id=None,
        )
        predictions, stack = constraint_set.build(
            [ghost], 0.25, 10, ego_position=np.array([5.0, 6.0]), start_time=0.0
        )
        assert len(predictions) == 1
        assert stack is not None and stack.dynamic_fields is None

    def test_disabled_flag_restores_circle_formulation(self, patrol_context):
        scenario, context = patrol_context
        constraint_set = CollisionConstraintSet(
            context.vehicle_params,
            spatial_index=context.spatial_index,
            timegrid=context.timegrid,
            use_field_constraints=False,
        )
        detections = _detections(scenario)
        predictions, stack = constraint_set.build(
            detections, 0.25, 10, ego_position=np.array(scenario.start_pose.position),
            start_time=0.0,
        )
        assert stack is None
        assert len(predictions) == len(
            constraint_set.from_detections(
                detections, 0.25, 10,
                ego_position=np.array(scenario.start_pose.position), start_time=0.0,
            )
        )


class TestFieldConstraintStack:
    def _stack(self, context, horizon=10, start_time=0.0):
        constraint_set = CollisionConstraintSet(
            context.vehicle_params,
            spatial_index=context.spatial_index,
            timegrid=context.timegrid,
        )
        patrol = context.timegrid.obstacles[0]
        detection = Detection(
            box=patrol.box,
            velocity=np.array([0.0, patrol.speed]),
            confidence=1.0,
            obstacle_id=patrol.obstacle_id,
        )
        _, stack = constraint_set.build(
            [detection], 0.25, horizon, ego_position=np.array([0.0, 0.0]),
            start_time=start_time,
        )
        return constraint_set, stack

    def test_static_fast_path_matches_distance_field(self, patrol_context):
        """The hoisted static query must stay bit-identical to the ESDF's own.

        The bilinear conventions (half-cell centering, clamping, corner
        blend) live in ``DistanceField.clearance``; this pins the stack's
        lean copy to it so the two can never silently diverge.
        """
        _, context = patrol_context
        _, stack = self._stack(context)
        rng = np.random.RandomState(5)
        points = rng.rand(200, 2) * 60.0 - 5.0
        values, gradients = stack._static_values(points)
        np.testing.assert_array_equal(values, stack.static_field.clearance(points))
        assert gradients is None

    def test_fused_gather_matches_per_field_queries(self, patrol_context):
        _, context = patrol_context
        _, stack = self._stack(context)
        rng = np.random.RandomState(7)
        centers = rng.rand(10, 3, 2) * 30.0 + np.array([10.0, 0.0])
        fused, _ = stack._dynamic_values(centers)
        reference = np.concatenate(
            [stack.dynamic_fields[h].clearance(centers[h]) for h in range(10)]
        )
        np.testing.assert_array_equal(fused, reference)

    def test_violations_are_hinges_of_clearance(self, patrol_context):
        _, context = patrol_context
        _, stack = self._stack(context)
        rng = np.random.RandomState(3)
        centers = rng.rand(10, 3, 2) * 40.0
        violations = stack.violations(centers)
        assert violations.shape == (2 * 10 * 3,)
        assert np.all(violations >= 0.0)
        static = stack.static_field.clearance(centers.reshape(-1, 2))
        np.testing.assert_allclose(
            violations[: 10 * 3], np.maximum(0.0, stack.static_clearance - static)
        )

    def test_min_clearance_consistent_with_violations(self, patrol_context):
        _, context = patrol_context
        _, stack = self._stack(context)
        rng = np.random.RandomState(11)
        centers = rng.rand(10, 3, 2) * 40.0
        min_clearance = stack.min_clearance(centers)
        violations = stack.violations(centers)
        if min_clearance >= 0.0:
            assert float(violations.max(initial=0.0)) == pytest.approx(0.0, abs=1e-12)
        else:
            assert float(violations.max()) == pytest.approx(-min_clearance, rel=1e-9)

    def test_num_residuals_counts_blocks(self, patrol_context):
        _, context = patrol_context
        _, stack = self._stack(context)
        assert stack.num_residuals(10, 3) == 60
        static_only = FieldConstraintStack(
            static_field=stack.static_field, static_clearance=1.0
        )
        assert static_only.num_residuals(10, 3) == 30

    def test_short_dynamic_stack_rejected(self, patrol_context):
        _, context = patrol_context
        _, stack = self._stack(context, horizon=4)
        with pytest.raises(ValueError):
            stack.violations(np.zeros((6, 3, 2)))

    def test_negative_clearance_rejected(self):
        with pytest.raises(ValueError):
            FieldConstraintStack(static_field=None, static_clearance=-1.0)


class TestMPCIntegration:
    def _problem(self, context, scenario, use_field):
        constraint_set = CollisionConstraintSet(
            context.vehicle_params,
            spatial_index=context.spatial_index,
            timegrid=context.timegrid,
            use_field_constraints=use_field,
        )
        detections = _detections(scenario)
        state = VehicleState.from_pose(scenario.start_pose)
        predictions, stack = constraint_set.build(
            detections, 0.25, 8, ego_position=state.position, start_time=0.0
        )
        model = AckermannModel(context.vehicle_params, dt=0.25)
        references = np.tile(state.position, (8, 1)) + np.linspace(0, 2, 8)[:, None]
        return MPCProblem(
            model=model,
            initial_state=state,
            reference_positions=references,
            obstacle_predictions=predictions,
            field_constraint=stack,
            ego_circle_offsets=constraint_set.ego_circle_offsets,
            ego_circle_radius=constraint_set.ego_circle_radius,
        )

    def test_field_problem_residuals_shrink(self, patrol_context):
        scenario, context = patrol_context
        circle = self._problem(context, scenario, use_field=False)
        field = self._problem(context, scenario, use_field=True)
        controls = np.zeros((8, 2))
        circle_collisions = circle.constraint_violations(circle.rollout(controls))
        field_collisions = field.constraint_violations(field.rollout(controls))
        # The field stack is bounded by 2 blocks x stages x ego circles no
        # matter how many obstacles the scene holds; the circle stack grows
        # with every covered obstacle.
        assert field_collisions.size <= 2 * 8 * 3
        assert field_collisions.size < circle_collisions.size

    def test_solver_descends_on_field_problem(self, patrol_context):
        scenario, context = patrol_context
        problem = self._problem(context, scenario, use_field=True)
        start = np.zeros((8, 2))
        result = GaussNewtonSolver(max_iterations=6).solve(problem, initial_controls=start)
        assert result.objective <= problem.objective(start) + 1e-9

    def test_min_clearance_finite_with_field_only(self, patrol_context):
        scenario, context = patrol_context
        problem = self._problem(context, scenario, use_field=True)
        assert np.isfinite(problem.min_clearance(np.zeros((8, 2))))

    def test_clearance_margins_name_the_field_source(self, patrol_context):
        scenario, context = patrol_context
        controls = np.zeros((8, 2))
        field = self._problem(context, scenario, use_field=True)
        margins = field.clearance_margins(controls)
        assert "field" in margins
        assert field.min_clearance(controls) == min(margins.values())
        circle = self._problem(context, scenario, use_field=False)
        assert "field" not in circle.clearance_margins(controls)

    def test_analytic_jacobian_matches_fd_on_field_problem(self, patrol_context):
        scenario, context = patrol_context
        problem = self._problem(context, scenario, use_field=True)
        controls = np.tile([0.3, 0.05], (8, 1))
        residuals, jacobian = problem.residuals_and_jacobian(controls)
        np.testing.assert_array_equal(residuals, problem.residuals(controls))
        step = 1e-7
        flat = controls.ravel()
        numerical = np.zeros_like(jacobian)
        for index in range(flat.shape[0]):
            forward = flat.copy()
            forward[index] += step
            backward = flat.copy()
            backward[index] -= step
            numerical[:, index] = (
                problem.residuals(forward.reshape(8, 2))
                - problem.residuals(backward.reshape(8, 2))
            ) / (2.0 * step)
        np.testing.assert_allclose(jacobian, numerical, atol=5e-4)


class TestCOControllerFieldPath:
    def test_solve_info_reports_collision_residuals(self, patrol_context):
        scenario, context = patrol_context
        for use_field, bound in ((True, 100), (False, 10_000)):
            constraint_set = CollisionConstraintSet(
                context.vehicle_params,
                spatial_index=context.spatial_index,
                timegrid=context.timegrid,
                use_field_constraints=use_field,
            )
            controller = COController(
                context.vehicle_params,
                horizon=8,
                dt=0.1,
                constraint_set=constraint_set,
            )
            controller.set_reference_path(context.reference_path)
            world = ParkingWorld(scenario, context.vehicle_params, dt=0.1)
            detections = ObjectDetector().detect(
                world.state, world.current_obstacles(), time=0.0
            )
            controller.act(world.state, detections, time=0.0)
            info = controller.last_info
            assert 0 < info.collision_residuals < bound


class TestRolloutFastPath:
    def test_rollout_matches_reference_loop(self):
        """The optimized rollout must be bit-identical to the naive loop."""
        import math

        from repro.geometry.angles import normalize_angle
        from repro.vehicle.params import VehicleParams

        params = VehicleParams()
        model = AckermannModel(params, dt=0.25)
        state = VehicleState(x=3.0, y=10.0, heading=0.4, velocity=1.1, steer=0.05)
        rng = np.random.RandomState(0)
        controls = rng.randn(12, 2) * 2.0
        states = model.rollout_controls_array(state, controls)
        reference = np.zeros((13, 4))
        reference[0] = [state.x, state.y, state.heading, state.velocity]
        for h in range(12):
            x, y, heading, velocity = reference[h]
            accel = float(np.clip(controls[h, 0], -params.max_deceleration, params.max_acceleration))
            steer = float(np.clip(controls[h, 1], -params.max_steer, params.max_steer))
            velocity = float(
                np.clip(velocity + accel * model.dt, -params.max_reverse_speed, params.max_speed)
            )
            x = x + velocity * math.cos(heading) * model.dt
            y = y + velocity * math.sin(heading) * model.dt
            heading = normalize_angle(
                heading + velocity / params.wheelbase * math.tan(steer) * model.dt
            )
            reference[h + 1] = [x, y, heading, velocity]
        assert np.array_equal(states, reference)
