"""Lockstep fleet stepping: bitwise parity, cross-session batching, raggedness.

The fleet scheduler's contract is strict: a ``co_solver="batched"`` spec
produces the *same* episode — result, trace, step-event stream — whether it
runs alone (batches of one) or inside any fleet cohort, because the batched
Gauss-Newton solver is bitwise invariant to batch composition.  These tests
pin that contract across the in-process stepper, the ``"fleet"`` and
``"fleet-process"`` executor backends, and the asyncio service, and pin the
ragged-cohort behaviour (sub-batching with stats, never silent fallback).
"""

from __future__ import annotations

import asyncio
import logging

import numpy as np
import pytest

from repro.api import BatchExecutor, BatchSpec, EpisodeSpec
from repro.core.config import ICOILConfig
from repro.api.session import run_episode_spec
from repro.serve import FleetStats, run_specs_fleet
from repro.world.scenario import DifficultyLevel, ScenarioConfig, SpawnMode


def co_spec(seed: int, *, co_solver: str = "batched", horizon: int = 10, max_steps: int = 25) -> EpisodeSpec:
    return EpisodeSpec(
        method="co",
        scenario=ScenarioConfig(difficulty=DifficultyLevel.NORMAL, seed=seed),
        icoil=ICOILConfig(horizon=horizon),
        co_solver=co_solver,
        max_steps=max_steps,
    )


def assert_outcomes_bitwise_equal(fleet_outcomes, reference_outcomes):
    assert len(fleet_outcomes) == len(reference_outcomes)
    for fleet, reference in zip(fleet_outcomes, reference_outcomes):
        assert fleet.result == reference.result
        assert np.array_equal(fleet.trace.positions, reference.trace.positions)
        assert np.array_equal(fleet.trace.headings, reference.trace.headings)
        assert np.array_equal(fleet.trace.steering, reference.trace.steering)
        assert np.array_equal(fleet.trace.velocities, reference.trace.velocities)
        assert fleet.events == reference.events


class TestFleetParity:
    def test_batched_specs_fleet_equal_sequential(self):
        specs = [co_spec(seed) for seed in range(3)]
        reference = [run_episode_spec(spec) for spec in specs]
        outcomes, stats = run_specs_fleet(specs)
        assert_outcomes_bitwise_equal(outcomes, reference)
        # The whole point: every tick answered the cohort's CO problems
        # with one stacked solve, not one solve per session.
        assert stats.batched_calls > 0
        assert stats.solves_per_tick > 1.0
        assert stats.problems_per_solve > 1.0
        assert stats.solo_solves == 0
        assert stats.episodes == len(specs)

    def test_scalar_specs_ride_the_tick_without_co_batching(self):
        specs = [co_spec(seed, co_solver="scalar") for seed in range(2)]
        reference = [run_episode_spec(spec) for spec in specs]
        outcomes, stats = run_specs_fleet(specs)
        assert_outcomes_bitwise_equal(outcomes, reference)
        assert stats.batched_calls == 0
        assert stats.batched_problems == 0
        assert stats.solo_solves > 0

    def test_mixed_methods_step_in_the_same_tick(self):
        specs = [
            co_spec(0),
            EpisodeSpec(
                method="expert",
                scenario=ScenarioConfig(scenario_name="perpendicular-easy", seed=3),
                max_steps=25,
            ),
        ]
        reference = [run_episode_spec(spec) for spec in specs]
        outcomes, stats = run_specs_fleet(specs)
        assert_outcomes_bitwise_equal(outcomes, reference)
        # The expert session has no CO solve: it finishes through the
        # direct path while the CO session batches.
        assert stats.direct_steps > 0
        assert stats.batched_problems > 0

    def test_run_is_repeatable_after_completion(self):
        session_specs = [co_spec(0, max_steps=8)]
        first, _ = run_specs_fleet(session_specs)
        second, _ = run_specs_fleet(session_specs)
        assert first[0].result == second[0].result


class TestRaggedCohorts:
    def test_differing_structures_sub_batch_with_stats_and_log(self, caplog):
        # Two CO horizons -> two structure signatures -> every CO tick
        # fragments into two solve_many groups.
        specs = [co_spec(0), co_spec(1), co_spec(2, horizon=12)]
        reference = [run_episode_spec(spec) for spec in specs]
        with caplog.at_level(logging.INFO, logger="repro.serve.fleet"):
            outcomes, stats = run_specs_fleet(specs)
        assert_outcomes_bitwise_equal(outcomes, reference)
        assert stats.ragged_ticks > 0
        assert stats.signature_groups > stats.ticks
        # Raggedness is reported, never silent.
        assert any("structure groups" in record.message for record in caplog.records)

    def test_uniform_cohort_is_never_ragged(self):
        _, stats = run_specs_fleet([co_spec(seed, max_steps=10) for seed in range(2)])
        assert stats.ragged_ticks == 0
        assert stats.max_group_size == 2


class TestFleetExecutorBackends:
    def make_batch(self, **overrides) -> BatchSpec:
        base = dict(
            method="co",
            seeds=(0, 1, 2),
            difficulties=(DifficultyLevel.NORMAL,),
            spawn_mode=SpawnMode.RANDOM,
            max_steps=20,
            co_solver="batched",
        )
        base.update(overrides)
        return BatchSpec(**base)

    def test_fleet_backend_bitwise_matches_thread(self):
        spec = self.make_batch()
        thread = BatchExecutor(backend="thread", max_workers=1, summary_stream=None).run(spec)
        executor = BatchExecutor(backend="fleet", summary_stream=None)
        fleet = executor.run(spec)
        assert fleet.results == thread.results
        for fleet_trace, thread_trace in zip(fleet.traces, thread.traces):
            assert np.array_equal(fleet_trace.positions, thread_trace.positions)
            assert np.array_equal(fleet_trace.steering, thread_trace.steering)
        assert executor.last_fleet_stats["solves_per_tick"] > 1.0
        assert fleet.summary.solves_per_tick == executor.last_fleet_stats["solves_per_tick"]

    def test_fleet_process_backend_bitwise_matches_thread(self):
        spec = self.make_batch(seeds=(0, 1))
        thread = BatchExecutor(backend="thread", max_workers=1, summary_stream=None).run(spec)
        with BatchExecutor(backend="fleet-process", max_workers=1, summary_stream=None) as executor:
            fleet = executor.run(spec)
            stats = dict(executor.last_fleet_stats)
        assert fleet.results == thread.results
        for fleet_trace, thread_trace in zip(fleet.traces, thread.traces):
            assert np.array_equal(fleet_trace.positions, thread_trace.positions)
        assert stats["batched_problems"] > 0
        assert stats["episodes"] == 2

    def test_fleet_summary_line_includes_fleet_metrics(self):
        import io
        import json

        stream = io.StringIO()
        BatchExecutor(backend="fleet", summary_stream=stream).run(
            self.make_batch(seeds=(0, 1), max_steps=10)
        )
        payload = json.loads(stream.getvalue().strip())
        assert payload["backend"] == "fleet"
        assert payload["solves_per_tick"] > 1.0


class TestServeAppFleet:
    def test_submit_fleet_streams_and_matches_sequential(self):
        from repro.serve import ServeApp

        specs = [co_spec(seed, max_steps=15) for seed in range(2)]
        reference = [run_episode_spec(spec) for spec in specs]

        async def body():
            async with ServeApp(max_concurrency=2) as app:
                handles = app.submit_fleet(specs)
                outcomes = []
                for handle in handles:
                    events = [event async for event in handle.steps()]
                    outcome = await handle.outcome()
                    assert len(events) == outcome.result.num_steps
                    assert [e.step_index for e in events] == list(range(len(events)))
                    outcomes.append(outcome)
                fleet_stats = app.stats()["fleet"]
            return outcomes, fleet_stats

        outcomes, fleet_stats = asyncio.run(body())
        assert_outcomes_bitwise_equal(outcomes, reference)
        assert fleet_stats["batched_problems"] > 0


class TestCoSolverSpec:
    def test_episode_spec_rejects_unknown_solver(self):
        with pytest.raises(ValueError):
            EpisodeSpec(method="co", co_solver="magic")

    def test_batch_spec_rejects_unknown_solver(self):
        with pytest.raises(ValueError):
            BatchSpec(method="co", seeds=(0,), co_solver="magic")

    def test_round_trip_preserves_batched_solver(self):
        spec = co_spec(7)
        assert EpisodeSpec.from_dict(spec.to_dict()) == spec
        assert spec.to_dict()["co_solver"] == "batched"

    def test_default_solver_is_absent_from_serialization(self):
        # Sparse serialization: legacy cache keys must not change when the
        # spec uses the historical scalar path.
        spec = co_spec(7, co_solver="scalar")
        assert "co_solver" not in spec.to_dict()
        assert EpisodeSpec.from_dict(spec.to_dict()).co_solver == "scalar"

    def test_batch_spec_forwards_solver_to_episodes(self):
        batch = BatchSpec(method="co", seeds=(0, 1), co_solver="batched")
        assert all(spec.co_solver == "batched" for spec in batch.episode_specs())

    def test_fleet_stats_round_trip(self):
        stats = FleetStats(ticks=4, batched_calls=4, batched_problems=12, episodes=3)
        payload = stats.to_dict()
        assert payload["solves_per_tick"] == 3.0
        assert payload["problems_per_solve"] == 3.0
