"""Tests for the batched episode executor: ordering, determinism, summaries."""

from __future__ import annotations

import io
import json

import pytest

from repro.api import BatchExecutor, BatchSpec, EpisodeSpec
from repro.world.scenario import DifficultyLevel, SpawnMode


def expert_batch(num_seeds: int = 10, max_steps: int = 5) -> BatchSpec:
    """A cheap deterministic batch: expert method, capped episodes."""
    return BatchSpec(
        method="expert",
        seeds=tuple(range(num_seeds)),
        difficulties=(DifficultyLevel.EASY, DifficultyLevel.NORMAL),
        spawn_mode=SpawnMode.CLOSE,
        max_steps=max_steps,
    )


class TestBatchExecutor:
    def test_results_come_back_in_deterministic_seed_order(self):
        """≥20 episodes through the worker pool, ordered difficulty-major/seed-minor."""
        spec = expert_batch(num_seeds=10)
        assert spec.num_episodes == 20
        outcome = BatchExecutor(max_workers=4, summary_stream=None).run(spec)
        assert len(outcome.results) == 20
        expected = [
            (difficulty.value, seed)
            for difficulty in spec.difficulties
            for seed in spec.seeds
        ]
        assert [(r.difficulty, r.seed) for r in outcome.results] == expected

    def test_parallel_results_equal_serial_results(self):
        spec = expert_batch(num_seeds=10)
        parallel = BatchExecutor(max_workers=4, summary_stream=None).run(spec)
        serial = BatchExecutor(max_workers=1, summary_stream=None).run(spec)
        assert parallel.results == serial.results
        assert len(parallel.traces) == len(serial.traces)

    def test_repeated_runs_are_bitwise_identical(self):
        spec = expert_batch(num_seeds=3)
        executor = BatchExecutor(max_workers=3, summary_stream=None)
        assert executor.run(spec).results == executor.run(spec).results

    def test_methods_resolved_before_any_work(self):
        executor = BatchExecutor(summary_stream=None)
        with pytest.raises(ValueError, match="unknown method"):
            executor.run_specs([EpisodeSpec(method="no-such-method")])

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            BatchExecutor(max_workers=0)

    def test_summary_json_line(self):
        stream = io.StringIO()
        spec = expert_batch(num_seeds=2)
        outcome = BatchExecutor(max_workers=2, summary_stream=stream).run(spec)
        line = stream.getvalue().strip()
        payload = json.loads(line)
        assert payload["event"] == "batch_summary"
        assert payload["method"] == "expert"
        assert payload["episodes"] == 4
        assert payload["wall_time_s"] > 0
        assert payload["episodes_per_sec"] > 0
        assert payload["workers"] == 2
        assert outcome.summary.num_episodes == 4

    def test_outcome_is_iterable_and_sized(self):
        outcome = BatchExecutor(summary_stream=None).run(expert_batch(num_seeds=2))
        assert len(outcome) == 4
        assert list(outcome) == list(outcome.results)


class TestBatchRepeatability:
    def test_run_results_is_repeatable(self):
        spec = BatchSpec(
            method="expert",
            seeds=(0, 1),
            difficulties=(DifficultyLevel.EASY,),
            spawn_mode=SpawnMode.CLOSE,
            time_limit=70.0,
        )
        first = BatchExecutor(summary_stream=None).run_results(spec)
        second = BatchExecutor(summary_stream=None).run_results(spec)
        assert first == second
