"""Smoke/unit tests for the benchmark trajectory report script.

``benchmarks/report_trajectory.py`` is also executed against the real
repo-root ``BENCH_*.json`` files in CI (benchmark-smoke job); these tests
pin its parsing and rendering against controlled inputs.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path


_SCRIPT = Path(__file__).resolve().parents[1] / "benchmarks" / "report_trajectory.py"
_spec = importlib.util.spec_from_file_location("report_trajectory", _SCRIPT)
report_trajectory = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("report_trajectory", report_trajectory)
_spec.loader.exec_module(report_trajectory)


def _write_lines(path: Path, payloads) -> None:
    path.write_text("\n".join(json.dumps(p) for p in payloads) + "\n")


def test_renders_tables_and_trends(tmp_path):
    planner = tmp_path / "planner.json"
    throughput = tmp_path / "throughput.json"
    _write_lines(
        planner,
        [
            {"event": "planner_bench", "scenario": "legacy", "speedup": 9.5},
            {"event": "planner_bench_summary", "median_speedup": 9.5},
            {"event": "planner_bench_summary", "median_speedup": 11.25},
            {
                "event": "dynamic_bench",
                "scenario": "legacy",
                "reactive_parked": 3,
                "aware_parked": 6,
            },
        ],
    )
    _write_lines(
        throughput,
        [{"event": "batch_summary", "backend": "process", "episodes_per_sec": 4.2}],
    )
    out = tmp_path / "report.md"
    code = report_trajectory.main(
        ["--planner", str(planner), "--throughput", str(throughput), "--out", str(out)]
    )
    assert code == 0
    text = out.read_text()
    assert "### `planner_bench_summary` (2 entries)" in text
    assert "median_speedup trajectory: 9.5 -> 11.25" in text
    assert "| scenario |" in text
    assert "| legacy |" in text
    assert "### `batch_summary` (1 entries)" in text


def test_missing_files_render_empty_sections(tmp_path, capsys):
    code = report_trajectory.main(
        ["--planner", str(tmp_path / "absent.json"), "--throughput", str(tmp_path / "gone.json")]
    )
    assert code == 0
    assert "_no entries_" in capsys.readouterr().out


def test_malformed_line_fails_loudly(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"event": "planner_bench"}\nnot json\n')
    code = report_trajectory.main(["--planner", str(bad), "--throughput", str(bad)])
    assert code == 1
    assert "malformed JSON" in capsys.readouterr().err


def test_runs_against_repo_root_files():
    """The real accumulated trajectory files must always render."""
    code = report_trajectory.main([])
    assert code == 0


def test_groups_rows_by_event_and_sha(tmp_path):
    """Interleaved events regroup by (event, SHA); trends take one row per SHA."""
    planner = tmp_path / "planner.json"
    _write_lines(
        planner,
        [
            {"event": "planner_bench_summary", "median_speedup": 9.0, "sha": "aaa1111"},
            {"event": "dynamic_bench", "scenario": "legacy", "aware_parked": 5, "sha": "aaa1111"},
            {"event": "planner_bench_summary", "median_speedup": 9.5, "sha": "aaa1111"},
            {"event": "planner_bench_summary", "median_speedup": 11.0, "sha": "bbb2222"},
            {"event": "dynamic_bench", "scenario": "legacy", "aware_parked": 6, "sha": "bbb2222"},
        ],
    )
    out = tmp_path / "report.md"
    code = report_trajectory.main(["--planner", str(planner), "--out", str(out)])
    assert code == 0
    text = out.read_text()
    # SHA is a leading column and repeated same-SHA runs collapse in trends.
    assert "| sha |" in text
    assert "median_speedup trajectory: 9.5 -> 11" in text
    assert "aware_parked trajectory: 5 -> 6" in text


def test_svg_trend_plots_written(tmp_path):
    """--svg-dir renders one SHA-grouped chart per (file, event, metric)."""
    throughput = tmp_path / "throughput.json"
    _write_lines(
        throughput,
        [
            {
                "event": "serving_bench_summary",
                "thread_eps": 8.0,
                "process_eps": 40.0,
                "sha": "aaa1111",
            },
            {
                "event": "serving_bench_summary",
                "thread_eps": 8.5,
                "process_eps": 57.0,
                "sha": "bbb2222",
            },
        ],
    )
    svg_dir = tmp_path / "svg"
    code = report_trajectory.main(
        [
            "--planner", str(tmp_path / "absent.json"),
            "--throughput", str(throughput),
            "--out", str(tmp_path / "report.md"),
            "--svg-dir", str(svg_dir),
        ]
    )
    assert code == 0
    chart = svg_dir / "throughput__serving_bench_summary__process_eps.svg"
    assert chart.exists()
    text = chart.read_text()
    assert text.startswith("<svg")
    assert "polyline" in text
    assert "aaa1111" in text and "bbb2222" in text
    # One chart per numeric metric of the event.
    assert (svg_dir / "throughput__serving_bench_summary__thread_eps.svg").exists()


def test_svg_multi_series_events_get_one_polyline_per_series(tmp_path):
    planner = tmp_path / "planner.json"
    _write_lines(
        planner,
        [
            {"event": "dynamic_bench", "scenario": "legacy", "aware_parked": 5, "sha": "a1"},
            {"event": "dynamic_bench", "scenario": "patrol", "aware_parked": 3, "sha": "a1"},
            {"event": "dynamic_bench", "scenario": "legacy", "aware_parked": 6, "sha": "b2"},
            {"event": "dynamic_bench", "scenario": "patrol", "aware_parked": 4, "sha": "b2"},
        ],
    )
    series = report_trajectory._series_history(
        report_trajectory.group_by_event(report_trajectory.load_lines(planner))[
            "dynamic_bench"
        ],
        "aware_parked",
    )
    assert list(series) == ["legacy", "patrol"]
    assert series["legacy"] == [("a1", 5.0), ("b2", 6.0)]
    svg = report_trajectory.render_trend_svg("dynamic_bench: aware_parked", series)
    assert svg.count("<polyline") == 2


def test_unstamped_rows_keep_per_row_trends(tmp_path):
    planner = tmp_path / "planner.json"
    _write_lines(
        planner,
        [
            {"event": "planner_bench_summary", "median_speedup": 3.0},
            {"event": "planner_bench_summary", "median_speedup": 4.0},
            {"event": "planner_bench_summary", "median_speedup": 5.0, "sha": "ccc3333"},
        ],
    )
    out = tmp_path / "report.md"
    code = report_trajectory.main(["--planner", str(planner), "--out", str(out)])
    assert code == 0
    assert "median_speedup trajectory: 3 -> 4 -> 5" in out.read_text()
