"""Tests for the repro.api session layer: registry, specs, sessions, events."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import (
    BatchSpec,
    ControlStep,
    ControllerContext,
    ControllerRegistry,
    EpisodeSpec,
    ParkingSession,
    PerceptionOverrides,
    StepEvent,
    default_registry,
    register_method,
    run_episode_spec,
)
from repro.core.config import ICOILConfig
from repro.vehicle.actions import Action
from repro.world.scenario import (
    DifficultyLevel,
    ScenarioConfig,
    SpawnMode,
    build_scenario,
)
from repro.world.world import EpisodeStatus


def close_easy_config(seed: int = 0) -> ScenarioConfig:
    return ScenarioConfig(
        difficulty=DifficultyLevel.EASY, spawn_mode=SpawnMode.CLOSE, seed=seed
    )


class _ConstantController:
    """A trivial custom method: always emits the same action."""

    def __init__(self, action: Action) -> None:
        self.action = action

    def step(self, state, obstacles, lot, time=0.0) -> ControlStep:
        return ControlStep(action=self.action, mode="constant")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
class TestControllerRegistry:
    def test_builtin_methods_registered(self):
        names = default_registry().names()
        assert set(names) >= {"icoil", "il", "co", "expert"}

    def test_register_and_create(self):
        registry = ControllerRegistry()

        @registry.register("constant")
        def build(context):
            return _ConstantController(Action.idle())

        assert "constant" in registry
        scenario = build_scenario(close_easy_config())
        controller = registry.create("constant", ControllerContext(scenario))
        step = controller.step(None, (), scenario.lot)
        assert step.mode == "constant"

    def test_duplicate_name_rejected(self):
        registry = ControllerRegistry()
        registry.register("dup", lambda context: _ConstantController(Action.idle()))
        with pytest.raises(ValueError, match="already registered"):
            registry.register("dup", lambda context: _ConstantController(Action.idle()))

    def test_duplicate_allowed_with_overwrite(self):
        registry = ControllerRegistry()
        registry.register("dup", lambda context: "first")
        registry.register("dup", lambda context: "second", overwrite=True)
        assert registry.create("dup", None) == "second"

    def test_unknown_method_error_lists_registered_names(self):
        registry = ControllerRegistry()
        registry.register("alpha", lambda context: None)
        registry.register("beta", lambda context: None)
        with pytest.raises(ValueError) as excinfo:
            registry.factory_for("gamma")
        message = str(excinfo.value)
        assert "gamma" in message
        assert "alpha" in message and "beta" in message

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ControllerRegistry().register("", lambda context: None)

    def test_custom_method_runs_end_to_end_without_touching_eval(self):
        """A method registered via the decorator runs through a full session."""

        @register_method("test-noop")
        def build_noop(context):
            return _ConstantController(Action.idle())

        try:
            spec = EpisodeSpec(
                method="test-noop", scenario=close_easy_config(), max_steps=5
            )
            outcome = run_episode_spec(spec)
            assert outcome.result.method == "test-noop"
            assert outcome.result.num_steps == 5
            assert set(outcome.trace.modes) == {"constant"}
        finally:
            default_registry().unregister("test-noop")


# ---------------------------------------------------------------------------
# Lazy perception construction (per-factory)
# ---------------------------------------------------------------------------
class TestLazyPerception:
    def test_expert_builds_no_perception(self):
        scenario = build_scenario(close_easy_config())
        context = ControllerContext(scenario)
        default_registry().create("expert", context)
        assert not context.has_renderer
        assert not context.has_detector

    def test_co_builds_only_detector(self):
        scenario = build_scenario(close_easy_config())
        context = ControllerContext(scenario)
        default_registry().create("co", context)
        assert not context.has_renderer
        assert context.has_detector

    def test_il_builds_only_renderer(self, small_policy):
        scenario = build_scenario(close_easy_config())
        context = ControllerContext(scenario, il_policy=small_policy)
        default_registry().create("il", context)
        assert context.has_renderer
        assert not context.has_detector

    def test_icoil_builds_both(self, small_policy):
        scenario = build_scenario(close_easy_config())
        context = ControllerContext(scenario, il_policy=small_policy)
        default_registry().create("icoil", context)
        assert context.has_renderer
        assert context.has_detector

    def test_perception_overrides_take_precedence(self):
        config = ScenarioConfig(difficulty=DifficultyLevel.HARD)
        scenario = build_scenario(config)
        context = ControllerContext(
            scenario,
            perception=PerceptionOverrides(image_noise_std=0.5, detection_noise_std=0.9),
        )
        assert context.image_noise_std == 0.5
        assert context.detection_noise_std == 0.9
        # Without overrides the difficulty-implied levels apply.
        plain = ControllerContext(scenario)
        assert plain.image_noise_std == config.resolved_image_noise
        assert plain.detection_noise_std == config.resolved_detection_noise


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------
class TestSpecs:
    def test_episode_spec_round_trip(self):
        spec = EpisodeSpec(
            method="icoil",
            scenario=ScenarioConfig(
                difficulty=DifficultyLevel.HARD,
                spawn_mode=SpawnMode.REMOTE,
                num_static_obstacles=2,
                num_dynamic_obstacles=1,
                seed=17,
                image_noise_std=0.1,
            ),
            icoil=ICOILConfig(switch_threshold=0.2, guard_frames=5),
            perception=PerceptionOverrides(detection_noise_std=0.3),
            dt=0.05,
            time_limit=42.0,
            max_steps=99,
        )
        restored = EpisodeSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec

    def test_batch_spec_round_trip(self):
        spec = BatchSpec(
            method="co",
            seeds=(3, 1, 4, 1, 5),
            difficulties=(DifficultyLevel.NORMAL, DifficultyLevel.HARD),
            spawn_mode=SpawnMode.CLOSE,
            num_static_obstacles=1,
            icoil=ICOILConfig(window_size=7),
            time_limit=33.0,
        )
        restored = BatchSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec

    def test_episode_spec_round_trip_with_scenario_registry_reference(self):
        spec = EpisodeSpec(
            method="co",
            scenario=ScenarioConfig(
                scenario_name="parallel-hard",
                layout_params={"aisle_width": 7.5, "num_slots": 5},
                seed=5,
            ),
        )
        restored = EpisodeSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        assert restored.scenario.scenario_name == "parallel-hard"
        assert restored.scenario.layout_overrides == {"aisle_width": 7.5, "num_slots": 5}

    def test_batch_spec_forwards_scenario_reference(self):
        spec = BatchSpec(
            method="expert",
            seeds=(1, 2),
            scenario_name="angled-easy",
            layout_params={"slot_pitch": 4.2},
        )
        restored = BatchSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        for episode in spec.episode_specs():
            assert episode.scenario.scenario_name == "angled-easy"
            assert episode.scenario.layout_overrides == {"slot_pitch": 4.2}

    def test_batch_spec_expansion_order_is_difficulty_major(self):
        spec = BatchSpec(
            method="expert",
            seeds=(5, 2),
            difficulties=(DifficultyLevel.EASY, DifficultyLevel.HARD),
        )
        expanded = spec.episode_specs()
        assert [(e.scenario.difficulty, e.scenario.seed) for e in expanded] == [
            (DifficultyLevel.EASY, 5),
            (DifficultyLevel.EASY, 2),
            (DifficultyLevel.HARD, 5),
            (DifficultyLevel.HARD, 2),
        ]

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            EpisodeSpec(method="")
        with pytest.raises(ValueError):
            EpisodeSpec(method="expert", dt=0.0)
        with pytest.raises(ValueError):
            BatchSpec(method="expert", seeds=())
        with pytest.raises(ValueError):
            BatchSpec(method="expert", seeds=(1,), difficulties=())

    def test_round_tripped_spec_reproduces_identical_result(self):
        """Same seed (via a serialized copy) must give an identical EpisodeResult."""
        spec = EpisodeSpec(
            method="expert", scenario=close_easy_config(seed=3), time_limit=70.0
        )
        restored = EpisodeSpec.from_dict(spec.to_dict())
        first = run_episode_spec(spec).result
        second = run_episode_spec(restored).result
        assert first == second

    def test_with_seed_replaces_only_the_seed(self):
        spec = EpisodeSpec(method="expert", scenario=close_easy_config(seed=1))
        reseeded = spec.with_seed(9)
        assert reseeded.scenario.seed == 9
        assert reseeded.scenario.difficulty == spec.scenario.difficulty
        assert spec.scenario.seed == 1


# ---------------------------------------------------------------------------
# Sessions and event streaming
# ---------------------------------------------------------------------------
class TestParkingSession:
    def test_unknown_method_fails_fast(self):
        with pytest.raises(ValueError, match="registered methods"):
            ParkingSession(EpisodeSpec(method="magic"))

    def test_il_method_requires_policy(self):
        spec = EpisodeSpec(method="il", scenario=close_easy_config(), max_steps=3)
        with pytest.raises(ValueError, match="IL policy"):
            ParkingSession(spec).run()

    def test_expert_session_parks_and_streams_events(self):
        spec = EpisodeSpec(
            method="expert", scenario=close_easy_config(), time_limit=70.0
        )
        session = ParkingSession(spec)
        received = []
        session.subscribe(received.append)
        outcome = session.run()
        assert outcome.result.status is EpisodeStatus.PARKED
        assert len(received) == outcome.result.num_steps
        assert all(isinstance(event, StepEvent) for event in received)
        # Bus stamps events with increasing sequence numbers.
        assert [event.sequence for event in received] == list(
            range(1, len(received) + 1)
        )

    def test_step_events_are_self_consistent(self):
        """Post-step state and post-step distance belong to the same frame."""
        spec = EpisodeSpec(
            method="expert", scenario=close_easy_config(), time_limit=70.0, max_steps=30
        )
        outcome = ParkingSession(spec).run()
        events = outcome.events
        # Consecutive events chain: this frame's post state is the next frame's pre state.
        for before, after in zip(events[:-1], events[1:]):
            assert np.allclose(before.state.position, after.pre_step_state.position)
        # The trace rows expose the post-step state at the post-step time.
        for index, event in enumerate(events):
            assert outcome.trace.times[index] == event.stamp
            assert np.allclose(outcome.trace.positions[index], event.state.position)
            assert outcome.trace.min_obstacle_distances[index] == event.min_obstacle_distance

    def test_icoil_session_records_modes_and_uncertainty(self, small_policy):
        spec = EpisodeSpec(
            method="icoil",
            scenario=close_easy_config(),
            time_limit=10.0,
            max_steps=8,
        )
        outcome = ParkingSession(spec, il_policy=small_policy).run()
        assert set(outcome.trace.modes) <= {"il", "co"}
        assert 0.0 <= outcome.result.co_mode_fraction <= 1.0
        assert outcome.trace.uncertainties.shape == (outcome.result.num_steps,)

    def test_session_runs_are_repeatable(self, small_policy):
        """Two sessions over the same spec produce identical results."""
        config = close_easy_config(seed=2)
        spec = EpisodeSpec(
            method="icoil", scenario=config, time_limit=10.0, max_steps=10
        )
        first = ParkingSession(spec, il_policy=small_policy).run().result
        second = ParkingSession(spec, il_policy=small_policy).run().result
        assert first == second
