"""Tests for HSA, the iCOIL controller and the baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.co.controller import COController
from repro.core import (
    COOnlyController,
    DrivingMode,
    HSAModel,
    ICOILConfig,
    ICOILController,
    ILOnlyController,
)
from repro.core.hsa import scenario_complexity, scenario_uncertainty
from repro.il.expert import ExpertDriver
from repro.vehicle.state import VehicleState


class TestScenarioUncertainty:
    def test_uniform_distribution_maximises_entropy(self):
        uniform = scenario_uncertainty(np.full(10, 0.1))
        peaked = scenario_uncertainty(np.array([0.91] + [0.01] * 9))
        assert uniform > peaked
        assert uniform == pytest.approx(np.log(10))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            scenario_uncertainty(np.array([]))

    @given(st.integers(min_value=2, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_entropy_bounds(self, classes):
        rng = np.random.default_rng(classes)
        raw = rng.random(classes)
        probabilities = raw / raw.sum()
        entropy = scenario_uncertainty(probabilities)
        assert 0.0 <= entropy <= np.log(classes) + 1e-9


class TestScenarioComplexity:
    def test_more_obstacles_increase_complexity(self):
        few = scenario_complexity([3.0], horizon=10, action_dimension=2, danger_distance=3.0)
        many = scenario_complexity([3.0, 3.0, 3.0], horizon=10, action_dimension=2, danger_distance=3.0)
        assert many > few

    def test_faraway_obstacles_contribute_little(self):
        near = scenario_complexity([3.0], horizon=10, action_dimension=2, danger_distance=3.0)
        far = scenario_complexity([30.0], horizon=10, action_dimension=2, danger_distance=3.0)
        empty = scenario_complexity([], horizon=10, action_dimension=2, danger_distance=3.0)
        assert near > far
        assert far == pytest.approx(empty, rel=0.05)

    def test_longer_horizon_superlinear(self):
        short = scenario_complexity([3.0], horizon=5, action_dimension=2, danger_distance=3.0)
        long = scenario_complexity([3.0], horizon=10, action_dimension=2, danger_distance=3.0)
        assert long > 2.0 * short

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            scenario_complexity([1.0], horizon=0, action_dimension=2, danger_distance=3.0)


class TestHSAModel:
    def test_window_averaging(self):
        model = HSAModel(ICOILConfig(window_size=3), num_classes=4)
        uniform = np.full(4, 0.25)
        peaked = np.array([0.97, 0.01, 0.01, 0.01])
        first = model.update(uniform, [])
        second = model.update(peaked, [])
        assert second.average_uncertainty < first.average_uncertainty
        assert model.window_fill == 2

    def test_high_uncertainty_selects_co(self):
        model = HSAModel(ICOILConfig(switch_threshold=0.3), num_classes=10)
        reading = model.update(np.full(10, 0.1), [])
        assert reading.use_co
        assert reading.recommended_mode == "co"

    def test_low_uncertainty_selects_il(self):
        model = HSAModel(ICOILConfig(switch_threshold=0.3), num_classes=10)
        confident = np.array([0.99] + [0.01 / 9] * 9)
        reading = model.update(confident, [])
        assert not reading.use_co
        assert reading.recommended_mode == "il"

    def test_nearby_obstacles_push_towards_il(self):
        config = ICOILConfig(switch_threshold=0.3, window_size=1)
        moderate = np.array([0.55, 0.25] + [0.2 / 8] * 8)
        clear_scene = HSAModel(config, num_classes=10).update(moderate, [])
        crowded_scene = HSAModel(config, num_classes=10).update(moderate, [3.0, 3.0, 3.0, 3.0])
        assert crowded_scene.score < clear_scene.score

    def test_reset_clears_window(self):
        model = HSAModel(num_classes=4)
        model.update(np.full(4, 0.25), [])
        model.reset()
        assert model.window_fill == 0

    def test_raw_score_mode(self):
        config = ICOILConfig(normalize_hsa=False, switch_threshold=1e-4)
        model = HSAModel(config, num_classes=4)
        reading = model.update(np.full(4, 0.25), [2.0])
        assert reading.score == pytest.approx(
            reading.average_uncertainty / reading.average_complexity
        )

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ICOILConfig(window_size=0)
        with pytest.raises(ValueError):
            ICOILConfig(guard_frames=-1)
        with pytest.raises(ValueError):
            HSAModel(num_classes=1)


class TestICOILController:
    def _make_controller(self, scenario, policy, vehicle_params, config=None):
        expert = ExpertDriver(scenario.lot, scenario.obstacles, vehicle_params)
        path = expert.plan_reference(scenario.start_pose)
        co = COController(vehicle_params, horizon=6)
        controller = ICOILController(policy, co, config=config or ICOILConfig(guard_frames=2))
        controller.prepare(path)
        return controller

    def test_step_returns_telemetry(self, easy_scenario, small_policy, vehicle_params):
        controller = self._make_controller(easy_scenario, small_policy, vehicle_params)
        state = VehicleState.from_pose(easy_scenario.start_pose)
        info = controller.step(state, easy_scenario.obstacles, easy_scenario.lot, time=0.0)
        assert info.mode in (DrivingMode.CO, DrivingMode.IL)
        assert info.il_probabilities.shape == (small_policy.action_space.num_classes,)
        assert info.hsa.average_uncertainty >= 0.0
        assert len(controller.history) == 1

    def test_guard_time_blocks_switching(self, easy_scenario, small_policy, vehicle_params):
        config = ICOILConfig(guard_frames=1000, switch_threshold=1e-9)
        controller = self._make_controller(easy_scenario, small_policy, vehicle_params, config)
        state = VehicleState.from_pose(easy_scenario.start_pose)
        for step in range(3):
            info = controller.step(state, easy_scenario.obstacles, easy_scenario.lot, time=0.1 * step)
        # Even with a threshold that always selects CO/IL changes, the guard
        # keeps the initial CO mode.
        assert controller.mode is DrivingMode.CO
        assert not info.switched

    def test_prepare_resets_history(self, easy_scenario, small_policy, vehicle_params):
        controller = self._make_controller(easy_scenario, small_policy, vehicle_params)
        state = VehicleState.from_pose(easy_scenario.start_pose)
        controller.step(state, easy_scenario.obstacles, easy_scenario.lot)
        controller.prepare(controller.co_controller.reference_path)
        assert controller.history == []
        assert controller.mode is DrivingMode.CO

    def test_co_mode_records_solve_info(self, easy_scenario, small_policy, vehicle_params):
        config = ICOILConfig(guard_frames=1000)  # stay in the initial CO mode
        controller = self._make_controller(easy_scenario, small_policy, vehicle_params, config)
        state = VehicleState.from_pose(easy_scenario.start_pose)
        info = controller.step(state, easy_scenario.obstacles, easy_scenario.lot)
        assert info.mode is DrivingMode.CO
        assert info.co_solve_info is not None
        assert info.co_solve_info.solve_time > 0.0


class TestBaselines:
    def test_il_only_controller(self, easy_scenario, small_policy):
        controller = ILOnlyController(small_policy)
        controller.prepare()
        state = VehicleState.from_pose(easy_scenario.start_pose)
        info = controller.step(state, easy_scenario.obstacles, easy_scenario.lot)
        assert info.il_probabilities is not None
        assert info.inference_time > 0.0
        assert len(controller.history) == 1

    def test_co_only_controller(self, easy_scenario, vehicle_params):
        expert = ExpertDriver(easy_scenario.lot, easy_scenario.obstacles, vehicle_params)
        path = expert.plan_reference(easy_scenario.start_pose)
        controller = COOnlyController(COController(vehicle_params, horizon=6))
        controller.prepare(path)
        state = VehicleState.from_pose(easy_scenario.start_pose)
        info = controller.step(state, easy_scenario.obstacles, easy_scenario.lot)
        assert info.co_solve_info is not None
        assert info.action.throttle >= 0.0


class TestConflictEscalation:
    """Final-approach CO escalation on a finite predicted time-to-conflict."""

    def _confident(self, num_classes=30):
        probabilities = np.full(num_classes, 1e-9)
        probabilities[0] = 1.0
        return probabilities / probabilities.sum()

    def test_finite_conflict_on_final_approach_escalates(self):
        model = HSAModel(ICOILConfig())
        reading = model.update(
            self._confident(), [], time_to_conflict=2.0, final_approach=True
        )
        assert reading.conflict_escalated
        assert reading.use_co
        assert reading.recommended_mode == "co"
        assert reading.time_to_conflict == pytest.approx(2.0)

    def test_no_conflict_keeps_il_on_final_approach(self):
        model = HSAModel(ICOILConfig())
        reading = model.update(
            self._confident(), [], time_to_conflict=None, final_approach=True
        )
        assert not reading.conflict_escalated
        assert not reading.use_co

    def test_conflict_outside_final_approach_does_not_escalate(self):
        model = HSAModel(ICOILConfig())
        reading = model.update(
            self._confident(), [], time_to_conflict=2.0, final_approach=False
        )
        assert not reading.conflict_escalated
        # The conflict still raises the complexity term, which *lowers* the
        # score — escalation is the only path that forces CO here.
        assert not reading.use_co

    def test_final_approach_distance_validated(self):
        with pytest.raises(ValueError):
            ICOILConfig(final_approach_distance=-1.0)


class _ConflictTimegrid:
    """Stub time layer reporting a constant predicted time-to-conflict."""

    empty = False

    def __init__(self, value=1.5):
        self.value = value

    def time_to_conflict(self, position, start_time=0.0, threshold=None):
        return self.value


class TestControllerHandoff:
    def _make_controller(self, scenario, policy, vehicle_params, timegrid, config):
        expert = ExpertDriver(scenario.lot, scenario.obstacles, vehicle_params)
        path = expert.plan_reference(scenario.start_pose)
        co = COController(vehicle_params, horizon=6)
        controller = ICOILController(
            policy, co, config=config, timegrid=timegrid
        )
        controller.prepare(path)
        return controller

    def test_escalation_overrides_guard_time(
        self, easy_scenario, small_policy, vehicle_params
    ):
        """A finite conflict during final approach hands off to CO at once."""
        config = ICOILConfig(guard_frames=1000, final_approach_distance=1e9)
        controller = self._make_controller(
            easy_scenario, small_policy, vehicle_params, _ConflictTimegrid(), config
        )
        controller._mode = DrivingMode.IL
        controller._frames_since_switch = 0  # guard would normally block
        state = VehicleState.from_pose(easy_scenario.start_pose)
        info = controller.step(state, easy_scenario.obstacles, easy_scenario.lot, time=0.0)
        assert info.mode is DrivingMode.CO
        assert info.switched
        assert info.hsa.conflict_escalated

    def test_no_escalation_outside_final_approach(
        self, easy_scenario, small_policy, vehicle_params
    ):
        """Far from the goal the guard time still rules the handoff."""
        config = ICOILConfig(guard_frames=1000, final_approach_distance=0.0)
        controller = self._make_controller(
            easy_scenario, small_policy, vehicle_params, _ConflictTimegrid(), config
        )
        controller._mode = DrivingMode.IL
        controller._frames_since_switch = 0
        state = VehicleState.from_pose(easy_scenario.start_pose)
        info = controller.step(state, easy_scenario.obstacles, easy_scenario.lot, time=0.0)
        assert info.mode is DrivingMode.IL
        assert not info.hsa.conflict_escalated
