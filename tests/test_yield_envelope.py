"""Braking-envelope math and the dynamic-episode regression replays.

The envelope is the exactly-testable core of the velocity-aware yield: the
unit tests pin its closed-form kinematics, and the regression tests replay
the three episodes that used to end in collisions / out-of-bounds runs
(ROADMAP's "residual dynamic failures": patrols reaching a slow-moving ego
from the side mid-maneuver) and assert they now park.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.api import ControllerContext, EpisodeSpec, TimeLayerSpec, default_registry
from repro.il.envelope import BrakingEnvelope
from repro.world import DifficultyLevel, ScenarioConfig, SpawnMode, build_scenario
from repro.world.world import EpisodeStatus, ParkingWorld


@pytest.fixture
def envelope() -> BrakingEnvelope:
    return BrakingEnvelope(max_deceleration=4.0)


class TestBrakingEnvelope:
    def test_deceleration_is_comfort_scaled(self, envelope):
        assert envelope.deceleration == pytest.approx(2.0)

    def test_stop_distance_closed_form(self, envelope):
        speed = 1.2
        expected = speed * envelope.reaction_time + speed * speed / (2.0 * 2.0)
        assert envelope.stop_distance(speed) == pytest.approx(expected)

    def test_stop_distance_direction_agnostic(self, envelope):
        assert envelope.stop_distance(-0.9) == pytest.approx(envelope.stop_distance(0.9))

    def test_stop_distance_monotone_in_speed(self, envelope):
        speeds = np.linspace(0.0, 4.0, 17)
        distances = [envelope.stop_distance(s) for s in speeds]
        assert all(b >= a for a, b in zip(distances, distances[1:]))

    def test_stop_time_includes_reaction(self, envelope):
        assert envelope.stop_time(2.0) == pytest.approx(envelope.reaction_time + 1.0)

    def test_zero_speed_stops_immediately(self, envelope):
        assert envelope.stop_distance(0.0) == pytest.approx(0.0)
        assert envelope.stop_time(0.0) == pytest.approx(envelope.reaction_time)

    def test_arrival_times_zero_offset(self, envelope):
        times = envelope.arrival_times(np.array([0.0, 1.0, 2.0]), 1.0, 1.0)
        assert times[0] == pytest.approx(0.0)

    def test_arrival_times_monotone(self, envelope):
        offsets = np.linspace(0.0, 12.0, 25)
        times = envelope.arrival_times(offsets, 0.2, 1.8)
        assert np.all(np.diff(times) > 0.0)

    def test_arrival_times_steady_speed_is_linear(self, envelope):
        offsets = np.array([0.0, 1.0, 3.0, 6.0])
        times = envelope.arrival_times(offsets, 1.5, 1.5)
        assert np.allclose(times, offsets / 1.5)

    def test_arrival_times_cruise_slope_matches_schedule(self, envelope):
        offsets = np.array([20.0, 21.0])
        times = envelope.arrival_times(offsets, 0.1, 2.0)
        assert times[1] - times[0] == pytest.approx(0.5)

    def test_slow_start_arrives_later_than_schedule_start(self, envelope):
        offsets = np.array([0.5, 1.0, 2.0])
        slow = envelope.arrival_times(offsets, 0.05, 1.8)
        fast = envelope.arrival_times(offsets, 1.8, 1.8)
        assert np.all(slow >= fast)

    def test_accelerating_transition_is_exact(self, envelope):
        # From v0 to the schedule at the nominal acceleration: time to cover
        # the transition distance must match the kinematic identity.
        v0, vt = 0.5, 1.7
        a = envelope.nominal_acceleration
        transition_distance = (vt * vt - v0 * v0) / (2.0 * a)
        times = envelope.arrival_times(np.array([transition_distance]), v0, vt)
        assert times[0] == pytest.approx((vt - v0) / a)

    def test_decelerating_profile_slower_than_cruise(self, envelope):
        offsets = np.array([0.4, 0.8])
        braked = envelope.arrival_times(offsets, 2.0, 0.5)
        cruise = envelope.arrival_times(offsets, 2.0, 2.0)
        assert np.all(braked >= cruise)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_deceleration": 0.0},
            {"max_deceleration": 4.0, "comfort_factor": 0.0},
            {"max_deceleration": 4.0, "comfort_factor": 1.5},
            {"max_deceleration": 4.0, "reaction_time": -0.1},
            {"max_deceleration": 4.0, "nominal_acceleration": 0.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BrakingEnvelope(**kwargs)

    def test_rest_offset_aliases_stop_distance(self, envelope):
        assert envelope.rest_offset(1.3) == pytest.approx(envelope.stop_distance(1.3))


def _run_dynamic_episode(scenario_name: str, seed: int) -> EpisodeStatus:
    spec = EpisodeSpec(
        method="expert",
        scenario=ScenarioConfig(
            scenario_name=scenario_name,
            difficulty=DifficultyLevel.NORMAL,
            spawn_mode=SpawnMode.REMOTE,
            seed=seed,
        ),
        time_layer=TimeLayerSpec(enabled=True),
        time_limit=80.0,
    )
    scenario = build_scenario(spec.scenario)
    context = ControllerContext(scenario, time_layer=spec.time_layer, dt=spec.dt)
    controller = default_registry().create("expert", context)
    world = ParkingWorld(
        scenario, context.vehicle_params, dt=spec.dt, time_limit=spec.time_limit
    )
    max_steps = int(spec.time_limit / spec.dt) + 5
    for _ in range(max_steps):
        if world.status.is_terminal:
            break
        control = controller.step(
            world.state, world.current_obstacles(), scenario.lot, time=world.time
        )
        world.step(control.action)
    return world.status


# The three episodes that collided (or drove out of bounds) before the
# velocity-aware yield landed — pinned seeds, NORMAL difficulty.
_REGRESSION_EPISODES = [
    ("perpendicular-easy", 0),
    ("perpendicular-easy", 4),
    ("angled-easy", 4),
]


@pytest.mark.parametrize("scenario_name,seed", _REGRESSION_EPISODES)
def test_previously_colliding_episode_now_parks(scenario_name, seed):
    status = _run_dynamic_episode(scenario_name, seed)
    assert status is EpisodeStatus.PARKED, (
        f"{scenario_name} seed {seed} ended {status.value} — the braking-envelope "
        "yield regression returned"
    )


class TestExpertYieldPlumbing:
    def test_corridor_polygons_cover_patrol_cycle(self):
        """The swept-corridor polygons contain every sampled patrol box."""
        from repro.geometry.collision import shapes_collide

        spec = EpisodeSpec(
            method="expert",
            scenario=ScenarioConfig(
                scenario_name="perpendicular-easy",
                difficulty=DifficultyLevel.NORMAL,
                spawn_mode=SpawnMode.REMOTE,
                seed=0,
            ),
            time_layer=TimeLayerSpec(enabled=True),
        )
        scenario = build_scenario(spec.scenario)
        context = ControllerContext(scenario, time_layer=spec.time_layer, dt=spec.dt)
        expert = context.expert
        # The corridor machinery lives on the reservation table now; the
        # expert reads it through its ``time_layer`` surface.
        timegrid = expert.time_layer
        polygons = timegrid.corridor_polygons()
        assert polygons, "patrol presets must produce corridor polygons"
        for obstacle in timegrid.obstacles:
            period = obstacle.period
            span = period if math.isfinite(period) else timegrid.horizon
            for tau in np.linspace(0.0, span, 40):
                moved = obstacle.at_time(float(tau))
                assert any(
                    shapes_collide(moved.box.to_polygon(), polygon)
                    for polygon in polygons
                ), f"patrol box at t={tau:.2f} escapes every corridor polygon"

    def test_static_episodes_have_no_corridors(self, easy_scenario):
        from repro.il.expert import ExpertDriver

        expert = ExpertDriver(easy_scenario.lot, easy_scenario.obstacles)
        # A patrol-free lot yields no live time layer: no corridors to
        # stage against, and every pose is trivially outside patrol reach.
        assert expert.time_layer is None
        assert expert._outside_reach([easy_scenario.start_pose])
