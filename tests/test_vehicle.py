"""Tests for vehicle parameters, state, actions and kinematics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vehicle import Action, ActionSpace, AckermannModel, VehicleParams, VehicleState
from repro.vehicle.kinematics import KinematicControl


class TestVehicleParams:
    def test_defaults_consistent(self, vehicle_params):
        assert vehicle_params.front_overhang > 0.0
        assert vehicle_params.center_offset > 0.0
        assert vehicle_params.min_turning_radius > vehicle_params.wheelbase

    def test_invalid_wheelbase_rejected(self):
        with pytest.raises(ValueError):
            VehicleParams(wheelbase=-1.0)

    def test_invalid_rear_overhang_rejected(self):
        with pytest.raises(ValueError):
            VehicleParams(rear_overhang=10.0)


class TestVehicleState:
    def test_array_roundtrip(self):
        state = VehicleState(1.0, 2.0, 0.5, 1.2, 0.1)
        assert VehicleState.from_array(state.as_array()) == state

    def test_from_array_validates(self):
        with pytest.raises(ValueError):
            VehicleState.from_array(np.zeros(3))

    def test_footprint_centered_ahead_of_rear_axle(self, vehicle_params):
        state = VehicleState(0.0, 0.0, 0.0)
        footprint = state.footprint(vehicle_params)
        assert footprint.center_x == pytest.approx(vehicle_params.center_offset)
        assert footprint.length == pytest.approx(vehicle_params.length)

    def test_footprint_rotates_with_heading(self, vehicle_params):
        state = VehicleState(0.0, 0.0, math.pi / 2)
        footprint = state.footprint(vehicle_params)
        assert footprint.center_y == pytest.approx(vehicle_params.center_offset)

    def test_distance_to(self):
        assert VehicleState(0, 0).distance_to(VehicleState(3, 4)) == pytest.approx(5.0)


class TestAction:
    def test_validation(self):
        with pytest.raises(ValueError):
            Action(throttle=1.5)
        with pytest.raises(ValueError):
            Action(steer=-2.0)

    def test_array_roundtrip(self):
        action = Action(0.5, 0.0, -0.3, True)
        assert Action.from_array(action.as_array()) == action

    def test_clipped(self):
        action = Action.clipped(2.0, -1.0, 5.0, False)
        assert action.throttle == 1.0
        assert action.brake == 0.0
        assert action.steer == 1.0

    def test_longitudinal(self):
        assert Action(0.7, 0.2, 0.0).longitudinal == pytest.approx(0.5)


class TestActionSpace:
    def test_num_classes(self, action_space):
        assert action_space.num_classes == 30
        assert len(action_space) == 30

    def test_without_reverse(self):
        assert ActionSpace(steer_bins=5, include_reverse=False).num_classes == 15

    def test_action_for_and_index_of_consistent(self, action_space):
        for index in range(action_space.num_classes):
            action = action_space.action_for(index)
            assert action_space.index_of(action) == index

    def test_index_of_nearest_steer(self, action_space):
        action = Action(0.6, 0.0, 0.45, False)
        recovered = action_space.action_for(action_space.index_of(action))
        assert recovered.steer == pytest.approx(0.5)

    def test_one_hot(self, action_space):
        encoding = action_space.one_hot(3)
        assert encoding.sum() == 1.0
        assert encoding[3] == 1.0

    def test_out_of_range_index(self, action_space):
        with pytest.raises(IndexError):
            action_space.action_for(999)
        with pytest.raises(IndexError):
            action_space.one_hot(-1)

    def test_labels_unique(self, action_space):
        labels = [action_space.label_for(i) for i in range(action_space.num_classes)]
        assert len(set(labels)) == action_space.num_classes


class TestAckermannModel:
    def test_straight_line_motion(self, vehicle_params):
        model = AckermannModel(vehicle_params, dt=0.1)
        state = VehicleState(0.0, 0.0, 0.0, velocity=1.0)
        nxt = model.step(state, Action(throttle=0.0, brake=0.0, steer=0.0))
        assert nxt.x > state.x
        assert nxt.y == pytest.approx(0.0)
        assert nxt.heading == pytest.approx(0.0)

    def test_throttle_accelerates(self, vehicle_params):
        model = AckermannModel(vehicle_params, dt=0.1)
        state = VehicleState()
        nxt = model.step(state, Action(throttle=1.0))
        assert nxt.velocity > 0.0

    def test_reverse_gear_goes_backward(self, vehicle_params):
        model = AckermannModel(vehicle_params, dt=0.1)
        state = VehicleState()
        for _ in range(10):
            state = model.step(state, Action(throttle=0.5, reverse=True))
        assert state.velocity < 0.0
        assert state.x < 0.0

    def test_brake_stops_vehicle(self, vehicle_params):
        model = AckermannModel(vehicle_params, dt=0.1)
        state = VehicleState(velocity=2.0)
        for _ in range(30):
            state = model.step(state, Action.full_brake())
        assert state.velocity == pytest.approx(0.0, abs=1e-6)

    def test_speed_limit_respected(self, vehicle_params):
        model = AckermannModel(vehicle_params, dt=0.1)
        state = VehicleState()
        for _ in range(200):
            state = model.step(state, Action(throttle=1.0))
        assert state.velocity <= vehicle_params.max_speed + 1e-9

    def test_steering_rate_limit(self, vehicle_params):
        model = AckermannModel(vehicle_params, dt=0.1)
        state = VehicleState()
        nxt = model.step(state, Action(steer=1.0))
        assert nxt.steer <= vehicle_params.max_steer_rate * 0.1 + 1e-9

    def test_left_steer_turns_left(self, vehicle_params):
        model = AckermannModel(vehicle_params, dt=0.1)
        state = VehicleState(velocity=2.0, steer=vehicle_params.max_steer)
        for _ in range(10):
            state = model.step(state, Action(throttle=0.3, steer=1.0))
        assert state.heading > 0.0

    def test_rollout_length(self, vehicle_params):
        model = AckermannModel(vehicle_params, dt=0.1)
        controls = [KinematicControl(0.5, 0.1)] * 7
        states = model.rollout_controls(VehicleState(), controls)
        assert len(states) == 8

    def test_rollout_array_matches_step_control(self, vehicle_params):
        model = AckermannModel(vehicle_params, dt=0.1)
        start = VehicleState(1.0, 2.0, 0.3, 0.5)
        controls = np.array([[0.5, 0.2], [-0.2, -0.1], [0.1, 0.0]])
        states = model.rollout_controls_array(start, controls)
        state = start
        for row, control in zip(states[1:], controls):
            state = model.step_control(state, KinematicControl(*control))
            assert row[:2] == pytest.approx([state.x, state.y])
            assert row[2] == pytest.approx(state.heading)
            assert row[3] == pytest.approx(state.velocity)

    @given(
        st.floats(min_value=-2.0, max_value=2.0),
        st.floats(min_value=-0.6, max_value=0.6),
        st.floats(min_value=-1.5, max_value=3.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_step_control_respects_limits(self, accel, steer, velocity):
        params = VehicleParams()
        model = AckermannModel(params, dt=0.1)
        state = VehicleState(velocity=velocity)
        nxt = model.step_control(state, KinematicControl(accel, steer))
        assert -params.max_reverse_speed - 1e-9 <= nxt.velocity <= params.max_speed + 1e-9
        assert -math.pi <= nxt.heading < math.pi

    def test_control_to_action_forward(self, vehicle_params):
        model = AckermannModel(vehicle_params, dt=0.1)
        action = model.control_to_action(VehicleState(velocity=1.0), KinematicControl(1.0, 0.3))
        assert action.throttle > 0.0
        assert not action.reverse

    def test_control_to_action_braking(self, vehicle_params):
        model = AckermannModel(vehicle_params, dt=0.1)
        action = model.control_to_action(VehicleState(velocity=2.0), KinematicControl(-3.0, 0.0))
        assert action.brake > 0.0

    def test_invalid_dt(self, vehicle_params):
        with pytest.raises(ValueError):
            AckermannModel(vehicle_params, dt=0.0)
