"""Tests for the numpy neural-network framework."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Adam,
    Conv2D,
    CrossEntropyLoss,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    MeanSquaredErrorLoss,
    ReLU,
    SGD,
    Sequential,
    Softmax,
    load_parameters,
    save_parameters,
)


def numerical_gradient(function, array, epsilon=1e-6):
    grad = np.zeros_like(array)
    flat = array.ravel()
    grad_flat = grad.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = function()
        flat[index] = original - epsilon
        lower = function()
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * epsilon)
    return grad


class TestDense:
    def test_forward_shape(self):
        layer = Dense(4, 3)
        assert layer.forward(np.zeros((5, 4))).shape == (5, 3)

    def test_rejects_wrong_feature_count(self):
        with pytest.raises(ValueError):
            Dense(4, 3).forward(np.zeros((5, 6)))

    def test_backward_requires_forward(self):
        with pytest.raises(RuntimeError):
            Dense(4, 3).backward(np.zeros((5, 3)))

    def test_gradient_check(self, rng):
        layer = Dense(3, 2, rng=rng)
        inputs = rng.normal(size=(4, 3))
        target_grad = rng.normal(size=(4, 2))

        def loss():
            return float(np.sum(layer.forward(inputs, training=True) * target_grad))

        loss()
        layer.backward(target_grad)
        numeric = numerical_gradient(loss, layer.weights)
        assert np.allclose(numeric, layer.grad_weights, atol=1e-4)

    def test_input_gradient_check(self, rng):
        layer = Dense(3, 2, rng=rng)
        inputs = rng.normal(size=(2, 3))
        target_grad = rng.normal(size=(2, 2))
        layer.forward(inputs, training=True)
        grad_input = layer.backward(target_grad)

        def loss():
            return float(np.sum(layer.forward(inputs, training=True) * target_grad))

        numeric = numerical_gradient(loss, inputs)
        assert np.allclose(numeric, grad_input, atol=1e-4)


class TestActivationsAndPooling:
    def test_relu_zeroes_negatives(self):
        layer = ReLU()
        output = layer.forward(np.array([[-1.0, 2.0]]))
        assert output.tolist() == [[0.0, 2.0]]

    def test_relu_backward_mask(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 2.0]]), training=True)
        grad = layer.backward(np.array([[5.0, 5.0]]))
        assert grad.tolist() == [[0.0, 5.0]]

    def test_flatten_roundtrip(self):
        layer = Flatten()
        inputs = np.arange(24.0).reshape(2, 3, 2, 2)
        flat = layer.forward(inputs, training=True)
        assert flat.shape == (2, 12)
        assert layer.backward(flat).shape == inputs.shape

    def test_dropout_identity_in_eval(self, rng):
        layer = Dropout(0.5, rng=rng)
        inputs = rng.normal(size=(4, 10))
        assert np.array_equal(layer.forward(inputs, training=False), inputs)

    def test_dropout_scales_in_training(self, rng):
        layer = Dropout(0.5, rng=rng)
        inputs = np.ones((1, 1000))
        output = layer.forward(inputs, training=True)
        assert output.mean() == pytest.approx(1.0, abs=0.15)

    def test_softmax_normalises(self):
        layer = Softmax()
        output = layer.forward(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        assert np.allclose(output.sum(axis=1), 1.0)
        assert np.all(output > 0.0)

    def test_softmax_stability_large_logits(self):
        output = Softmax().forward(np.array([[1000.0, 1001.0]]))
        assert np.isfinite(output).all()

    def test_maxpool_forward(self):
        layer = MaxPool2D(2)
        inputs = np.arange(16.0).reshape(1, 1, 4, 4)
        output = layer.forward(inputs)
        assert output.shape == (1, 1, 2, 2)
        assert output[0, 0, 0, 0] == 5.0

    def test_maxpool_backward_routes_to_argmax(self):
        layer = MaxPool2D(2)
        inputs = np.arange(16.0).reshape(1, 1, 4, 4)
        layer.forward(inputs, training=True)
        grad = layer.backward(np.ones((1, 1, 2, 2)))
        assert grad.sum() == pytest.approx(4.0)
        assert grad[0, 0, 1, 1] == 1.0
        assert grad[0, 0, 0, 0] == 0.0


class TestConv2D:
    def test_forward_shape_same_padding(self):
        layer = Conv2D(3, 8, kernel_size=3, padding=1)
        assert layer.forward(np.zeros((2, 3, 16, 16))).shape == (2, 8, 16, 16)

    def test_rejects_wrong_channels(self):
        with pytest.raises(ValueError):
            Conv2D(3, 8).forward(np.zeros((1, 4, 8, 8)))

    def test_known_convolution_value(self):
        layer = Conv2D(1, 1, kernel_size=3, padding=1)
        layer.weights[...] = 0.0
        layer.weights[0, 0, 1, 1] = 1.0  # identity kernel
        layer.bias[...] = 0.0
        inputs = np.arange(9.0).reshape(1, 1, 3, 3)
        assert np.allclose(layer.forward(inputs), inputs)

    def test_weight_gradient_check(self, rng):
        layer = Conv2D(1, 2, kernel_size=3, padding=1, rng=rng)
        inputs = rng.normal(size=(2, 1, 5, 5))
        target_grad = rng.normal(size=(2, 2, 5, 5))

        def loss():
            return float(np.sum(layer.forward(inputs, training=True) * target_grad))

        loss()
        layer.backward(target_grad)
        numeric = numerical_gradient(loss, layer.weights)
        assert np.allclose(numeric, layer.grad_weights, atol=1e-4)

    def test_input_gradient_check(self, rng):
        layer = Conv2D(1, 1, kernel_size=3, padding=1, rng=rng)
        inputs = rng.normal(size=(1, 1, 4, 4))
        target_grad = rng.normal(size=(1, 1, 4, 4))
        layer.forward(inputs, training=True)
        grad_input = layer.backward(target_grad)

        def loss():
            return float(np.sum(layer.forward(inputs, training=True) * target_grad))

        numeric = numerical_gradient(loss, inputs)
        assert np.allclose(numeric, grad_input, atol=1e-4)


class TestLosses:
    def test_cross_entropy_perfect_prediction(self):
        loss = CrossEntropyLoss()
        predictions = np.array([[1.0, 0.0], [0.0, 1.0]])
        targets = predictions.copy()
        value, grad = loss.compute(predictions, targets)
        assert value == pytest.approx(0.0, abs=1e-9)
        assert np.allclose(grad, 0.0)

    def test_cross_entropy_penalises_wrong_prediction(self):
        loss = CrossEntropyLoss()
        confident_wrong, _ = loss.compute(np.array([[0.01, 0.99]]), np.array([[1.0, 0.0]]))
        confident_right, _ = loss.compute(np.array([[0.99, 0.01]]), np.array([[1.0, 0.0]]))
        assert confident_wrong > confident_right

    def test_cross_entropy_shape_mismatch(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss().compute(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_mse_zero_for_equal(self):
        value, grad = MeanSquaredErrorLoss().compute(np.ones((2, 2)), np.ones((2, 2)))
        assert value == 0.0
        assert np.allclose(grad, 0.0)

    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=2, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_cross_entropy_nonnegative(self, batch, classes):
        rng = np.random.default_rng(batch * 10 + classes)
        logits = rng.random((batch, classes))
        predictions = logits / logits.sum(axis=1, keepdims=True)
        targets = np.eye(classes)[rng.integers(0, classes, size=batch)]
        value, _ = CrossEntropyLoss().compute(predictions, targets)
        assert value >= 0.0


class TestOptimizers:
    def test_sgd_moves_against_gradient(self):
        param = np.array([1.0, 1.0])
        SGD(learning_rate=0.1).step([param], [np.array([1.0, -1.0])])
        assert param[0] < 1.0
        assert param[1] > 1.0

    def test_sgd_momentum_accumulates(self):
        optimizer = SGD(learning_rate=0.1, momentum=0.9)
        param = np.zeros(1)
        for _ in range(3):
            optimizer.step([param], [np.array([1.0])])
        assert param[0] < -0.3  # more than 3 plain steps

    def test_adam_converges_on_quadratic(self):
        param = np.array([5.0])
        optimizer = Adam(learning_rate=0.2)
        for _ in range(200):
            optimizer.step([param], [2.0 * param])
        assert abs(param[0]) < 0.1

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SGD().step([np.zeros(2)], [])

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)
        with pytest.raises(ValueError):
            Adam(beta1=1.5)


class TestSequential:
    def _make_classifier(self, rng):
        return Sequential(
            [Dense(4, 16, rng=rng), ReLU(), Dense(16, 3, rng=rng), Softmax()]
        )

    def test_training_reduces_loss(self, rng):
        network = self._make_classifier(rng)
        inputs = rng.normal(size=(60, 4))
        labels = (inputs[:, 0] > 0).astype(int) + (inputs[:, 1] > 0).astype(int)
        targets = np.eye(3)[labels]
        history = network.fit(
            inputs, targets, CrossEntropyLoss(), Adam(0.01), epochs=15, batch_size=16, rng=rng
        )
        assert history[-1] < history[0]
        assert network.accuracy(inputs, targets) > 0.6

    def test_predict_does_not_cache(self, rng):
        network = self._make_classifier(rng)
        network.predict(rng.normal(size=(2, 4)))
        with pytest.raises(RuntimeError):
            network.backward(np.zeros((2, 3)))

    def test_parameter_count(self, rng):
        network = self._make_classifier(rng)
        expected = 4 * 16 + 16 + 16 * 3 + 3
        assert network.num_parameters() == expected

    def test_empty_layer_list_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_fit_validates_shapes(self, rng):
        network = self._make_classifier(rng)
        with pytest.raises(ValueError):
            network.fit(np.zeros((5, 4)), np.zeros((4, 3)), CrossEntropyLoss(), SGD())


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path, rng):
        network = Sequential([Dense(3, 5, rng=rng), ReLU(), Dense(5, 2, rng=rng), Softmax()])
        inputs = rng.normal(size=(4, 3))
        expected = network.predict(inputs)
        path = tmp_path / "weights.npz"
        save_parameters(network, path)

        clone = Sequential([Dense(3, 5), ReLU(), Dense(5, 2), Softmax()])
        load_parameters(clone, path)
        assert np.allclose(clone.predict(inputs), expected)

    def test_load_rejects_mismatched_architecture(self, tmp_path, rng):
        network = Sequential([Dense(3, 5, rng=rng)])
        path = tmp_path / "weights.npz"
        save_parameters(network, path)
        other = Sequential([Dense(3, 6)])
        with pytest.raises(ValueError):
            load_parameters(other, path)
