"""Tests for the ROS-like middleware: bus, nodes, executor and recorder."""

import pytest

from repro.middleware import (
    ControlCommandMessage,
    EgoStateMessage,
    Executor,
    Message,
    MessageBus,
    Node,
    TopicRecorder,
)
from repro.vehicle.actions import Action
from repro.vehicle.state import VehicleState


class CountingNode(Node):
    """Test node that publishes a message on every step."""

    def __init__(self, bus, rate_hz=10.0, topic="/count"):
        super().__init__("counter", bus, rate_hz)
        self.topic = topic

    def on_step(self, time):
        self.publish(self.topic, Message(stamp=time))


class TestMessageBus:
    def test_publish_delivers_to_subscriber(self):
        bus = MessageBus()
        received = []
        bus.subscribe("/topic", received.append)
        bus.publish("/topic", Message(stamp=1.0))
        assert len(received) == 1
        assert received[0].stamp == 1.0

    def test_sequence_numbers_increment(self):
        bus = MessageBus()
        first = bus.publish("/topic", Message(stamp=0.0))
        second = bus.publish("/topic", Message(stamp=0.1))
        assert first.sequence == 1
        assert second.sequence == 2

    def test_latched_message_available(self):
        bus = MessageBus()
        bus.publish("/topic", Message(stamp=5.0))
        assert bus.latest("/topic").stamp == 5.0
        assert bus.latest("/missing") is None

    def test_cancelled_subscription_stops_delivery(self):
        bus = MessageBus()
        received = []
        subscription = bus.subscribe("/topic", received.append)
        subscription.cancel()
        bus.publish("/topic", Message(stamp=0.0))
        assert received == []

    def test_multiple_subscribers_in_order(self):
        bus = MessageBus()
        order = []
        bus.subscribe("/topic", lambda m: order.append("a"))
        bus.subscribe("/topic", lambda m: order.append("b"))
        bus.publish("/topic", Message(stamp=0.0))
        assert order == ["a", "b"]

    def test_publish_count_and_topics(self):
        bus = MessageBus()
        bus.publish("/a", Message(stamp=0.0))
        bus.publish("/a", Message(stamp=0.1))
        bus.subscribe("/b", lambda m: None)
        assert bus.publish_count("/a") == 2
        assert set(bus.topics()) == {"/a", "/b"}

    def test_invalid_topic_and_message(self):
        bus = MessageBus()
        with pytest.raises(ValueError):
            bus.publish("", Message(stamp=0.0))
        with pytest.raises(TypeError):
            bus.publish("/topic", "not a message")

    def test_typed_messages_carry_payloads(self):
        bus = MessageBus()
        bus.publish("/ego", EgoStateMessage(stamp=0.0, state=VehicleState(1.0, 2.0)))
        bus.publish("/cmd", ControlCommandMessage(stamp=0.0, action=Action(0.5), source="il"))
        assert bus.latest("/ego").state.x == 1.0
        assert bus.latest("/cmd").source == "il"


class TestNodeAndExecutor:
    def test_node_rate_limits_steps(self):
        bus = MessageBus()
        node = CountingNode(bus, rate_hz=5.0)  # period 0.2 s
        executor = Executor(tick=0.1)
        executor.add_node(node)
        for _ in range(10):
            executor.spin_once()
        assert node.step_count == 5

    def test_executor_runs_nodes_in_registration_order(self):
        bus = MessageBus()
        order = []

        class A(Node):
            def on_step(self, time):
                order.append("a")

        class B(Node):
            def on_step(self, time):
                order.append("b")

        executor = Executor(tick=0.1)
        executor.add_node(A("a", bus))
        executor.add_node(B("b", bus))
        executor.spin_once()
        assert order == ["a", "b"]

    def test_duplicate_node_names_rejected(self):
        bus = MessageBus()
        executor = Executor()
        executor.add_node(CountingNode(bus))
        with pytest.raises(ValueError):
            executor.add_node(CountingNode(bus))

    def test_spin_until_predicate(self):
        bus = MessageBus()
        node = CountingNode(bus)
        executor = Executor(tick=0.1)
        executor.add_node(node)
        executor.spin(10.0, until=lambda: node.step_count >= 3)
        assert node.step_count == 3

    def test_invalid_parameters(self):
        bus = MessageBus()
        with pytest.raises(ValueError):
            Executor(tick=0.0)
        with pytest.raises(ValueError):
            Node("", bus)
        with pytest.raises(ValueError):
            Node("x", bus, rate_hz=0.0)


class TestTopicRecorder:
    def test_records_messages(self):
        bus = MessageBus()
        recorder = TopicRecorder(bus, ["/a"])
        bus.publish("/a", Message(stamp=0.0))
        bus.publish("/a", Message(stamp=0.1))
        bus.publish("/b", Message(stamp=0.2))
        assert recorder.count("/a") == 2
        assert recorder.count("/b") == 0

    def test_stop_and_clear(self):
        bus = MessageBus()
        recorder = TopicRecorder(bus, ["/a"])
        bus.publish("/a", Message(stamp=0.0))
        recorder.stop()
        bus.publish("/a", Message(stamp=0.1))
        assert recorder.count("/a") == 1
        recorder.clear()
        assert recorder.count("/a") == 0
