"""Fuzzed serialization round-trips for specs and scenarios (Hypothesis).

The executor's process backend, result caching and any future distributed
execution all rely on one contract: a spec (or a fully-built scenario)
serialized to JSON in one process reconstructs the *same bytes* in another.
``tests/test_executor_backends.py`` pins that end-to-end for a handful of
concrete specs under real multiprocessing; this module fuzzes the space —
random :class:`EpisodeSpec` / :class:`BatchSpec` / scenario parameters,
including the time-layer knobs introduced with the dynamic-obstacle layer —
and asserts byte-identical ``to_dict``/``from_dict``/``scenario_to_dict``
round-trips.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

try:
    from hypothesis import given, settings, strategies as st
except ImportError:  # pragma: no cover - exercised only on minimal installs
    pytest.skip("hypothesis is not installed", allow_module_level=True)

from repro.api import BatchSpec, EpisodeSpec, PerceptionOverrides, TimeLayerSpec
from repro.core.config import ICOILConfig
from repro.world import (
    DifficultyLevel,
    ScenarioConfig,
    SpawnMode,
    build_scenario,
    default_scenario_registry,
    scenario_to_dict,
)

settings.register_profile("ci", derandomize=True, max_examples=40, deadline=None)
settings.register_profile("dev", max_examples=80, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))

PRESETS = default_scenario_registry().names()


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _scenario_config_strategy(layout_params):
    return st.builds(
        ScenarioConfig,
        difficulty=st.sampled_from(list(DifficultyLevel)),
        spawn_mode=st.sampled_from(list(SpawnMode)),
        num_static_obstacles=st.integers(0, 6),
        num_dynamic_obstacles=st.one_of(st.none(), st.integers(0, 3)),
        seed=st.integers(0, 2**31 - 1),
        image_noise_std=st.one_of(st.none(), st.floats(0.0, 0.5)),
        detection_noise_std=st.one_of(st.none(), st.floats(0.0, 0.5)),
        scenario_name=st.sampled_from(PRESETS),
        layout_params=layout_params,
    )


# Arbitrary overrides round-trip fine even when they describe impossible
# geometry (serialization never builds the lot) ...
scenario_configs = _scenario_config_strategy(
    st.dictionaries(
        st.sampled_from(["aisle_width", "slot_pitch", "lot_length"]),
        st.floats(3.0, 40.0),
        max_size=2,
    )
)

# ... but actually *building* a scenario needs overrides the layout
# validation accepts on every preset: the dead-end lot is only 14 m wide,
# so its slot row plus aisle caps the universally-buildable aisle width
# at ~7.3 m (wider values raise in LotLayout.__post_init__).
buildable_configs = _scenario_config_strategy(
    st.one_of(
        st.just({}),
        st.dictionaries(
            st.just("aisle_width"), st.floats(6.0, 7.2), min_size=1, max_size=1
        ),
    )
)

time_layers = st.builds(
    TimeLayerSpec,
    enabled=st.booleans(),
    horizon=st.floats(1.0, 200.0),
    slice_dt=st.floats(0.1, 4.0),
    resolution=st.floats(0.1, 1.0),
)

perceptions = st.builds(
    PerceptionOverrides,
    image_noise_std=st.one_of(st.none(), st.floats(0.0, 0.3)),
    detection_noise_std=st.one_of(st.none(), st.floats(0.0, 0.3)),
)

icoils = st.builds(
    ICOILConfig,
    window_size=st.integers(1, 30),
    switch_threshold=st.floats(0.001, 2.0),
    guard_frames=st.integers(0, 40),
    horizon=st.integers(2, 20),
    action_dimension=st.integers(1, 4),
    danger_distance=st.floats(0.0, 8.0),
    normalize_hsa=st.booleans(),
)

episode_specs = st.builds(
    EpisodeSpec,
    method=st.sampled_from(["expert", "co", "il", "icoil"]),
    scenario=scenario_configs,
    icoil=icoils,
    perception=perceptions,
    time_layer=time_layers,
    dt=st.floats(0.02, 0.5),
    time_limit=st.floats(1.0, 200.0),
    max_steps=st.one_of(st.none(), st.integers(1, 2000)),
)

batch_specs = st.builds(
    BatchSpec,
    method=st.sampled_from(["expert", "co"]),
    seeds=st.lists(st.integers(0, 10_000), min_size=1, max_size=6, unique=True).map(tuple),
    difficulties=st.lists(
        st.sampled_from(list(DifficultyLevel)), min_size=1, max_size=3, unique=True
    ).map(tuple),
    spawn_mode=st.sampled_from(list(SpawnMode)),
    num_static_obstacles=st.integers(0, 6),
    num_dynamic_obstacles=st.one_of(st.none(), st.integers(0, 3)),
    scenario_name=st.sampled_from(PRESETS),
    icoil=icoils,
    perception=perceptions,
    time_layer=time_layers,
    dt=st.floats(0.02, 0.5),
    time_limit=st.floats(1.0, 200.0),
    max_steps=st.one_of(st.none(), st.integers(1, 2000)),
)


class TestSpecRoundTrips:
    @given(spec=episode_specs)
    def test_episode_spec_roundtrip_byte_identical(self, spec):
        first = _canonical(spec.to_dict())
        rebuilt = EpisodeSpec.from_dict(json.loads(first))
        assert rebuilt == spec
        assert _canonical(rebuilt.to_dict()) == first

    @given(spec=batch_specs)
    def test_batch_spec_roundtrip_byte_identical(self, spec):
        first = _canonical(spec.to_dict())
        rebuilt = BatchSpec.from_dict(json.loads(first))
        assert rebuilt == spec
        assert _canonical(rebuilt.to_dict()) == first
        # Expansion stays deterministic through the round-trip too.
        assert [s.to_dict() for s in rebuilt.episode_specs()] == [
            s.to_dict() for s in spec.episode_specs()
        ]

    @given(config=scenario_configs)
    def test_scenario_config_roundtrip_byte_identical(self, config):
        first = _canonical(config.to_dict())
        rebuilt = ScenarioConfig.from_dict(json.loads(first))
        assert rebuilt == config
        assert _canonical(rebuilt.to_dict()) == first

    @given(config=buildable_configs)
    def test_built_scenario_serializes_identically_twice(self, config):
        """Building the same config twice yields byte-identical scenarios."""
        first = _canonical(scenario_to_dict(build_scenario(config)))
        second = _canonical(scenario_to_dict(build_scenario(config)))
        assert first == second


def test_scenario_dict_identical_across_processes(tmp_path):
    """One subprocess re-derivation per preset: the cross-process guarantee.

    The Hypothesis cases above stay in-process for speed; this single
    explicit check pins that a fresh interpreter (fresh hash seed, fresh
    module state) serializes the same configs to the same bytes.
    """
    configs = [
        ScenarioConfig(
            scenario_name=name,
            difficulty=DifficultyLevel.NORMAL,
            spawn_mode=SpawnMode.RANDOM,
            seed=7,
        )
        for name in PRESETS
    ]
    local = [_canonical(scenario_to_dict(build_scenario(config))) for config in configs]

    script = tmp_path / "rebuild.py"
    script.write_text(
        "import json, sys\n"
        "from repro.world import ScenarioConfig, build_scenario, scenario_to_dict\n"
        "configs = json.load(open(sys.argv[1]))\n"
        "out = [json.dumps(scenario_to_dict(build_scenario(ScenarioConfig.from_dict(c))),"
        " sort_keys=True, separators=(',', ':')) for c in configs]\n"
        "json.dump(out, open(sys.argv[2], 'w'))\n"
    )
    config_path = tmp_path / "configs.json"
    config_path.write_text(json.dumps([config.to_dict() for config in configs]))
    out_path = tmp_path / "out.json"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    subprocess.run(
        [sys.executable, str(script), str(config_path), str(out_path)],
        check=True,
        env=env,
    )
    remote = json.loads(out_path.read_text())
    assert remote == local
