"""Patrol motion is a pure function of ``(time, scenario seed)``.

The time-indexed spatial layer precomputes patrol sweeps *once* and the
process-backend executor rebuilds scenarios in other interpreters, so any
hidden per-episode mutable state in dynamic-obstacle advancement would make
the timegrid's slices and the simulated patrols silently disagree.  These
tests pin the purity contract:

* ``at_time`` / ``sampled_trajectory`` are stateless — repeated and
  interleaved queries at arbitrary times are byte-identical, and a scenario
  rebuilt from its serialized config reproduces the exact same tracks,
* a patrol-bearing batch produces bitwise-identical per-step
  ``min_obstacle_distance`` traces (which embed the patrol positions) on
  the thread and process backends,
* the timegrid's conservative slices actually contain the simulated patrol
  positions the world steps against.
"""

from __future__ import annotations

import numpy as np

from repro.api import BatchExecutor, BatchSpec
from repro.spatial import TimeGrid
from repro.world import (
    DifficultyLevel,
    ScenarioConfig,
    SpawnMode,
    build_scenario,
)

PATROL_CONFIG = ScenarioConfig(
    scenario_name="legacy",
    difficulty=DifficultyLevel.NORMAL,
    spawn_mode=SpawnMode.CLOSE,
    seed=5,
)


class TestPurity:
    def test_interleaved_queries_are_stateless(self):
        scenario = build_scenario(PATROL_CONFIG)
        patrol = scenario.dynamic_obstacles[0]
        times = np.linspace(0.0, 90.0, 181)
        forward = patrol.sampled_trajectory(times)
        # Interleave queries in a scrambled order, then re-sample forward:
        # any internal advancement state would leak into the second pass.
        rng = np.random.default_rng(0)
        for time in rng.permutation(times):
            patrol.at_time(float(time))
        again = patrol.sampled_trajectory(times)
        assert np.array_equal(forward, again)

    def test_rebuilt_scenario_reproduces_exact_tracks(self):
        times = np.linspace(0.0, 60.0, 121)
        first = build_scenario(PATROL_CONFIG).patrol_trajectories(times)
        rebuilt_config = ScenarioConfig.from_dict(PATROL_CONFIG.to_dict())
        second = build_scenario(rebuilt_config).patrol_trajectories(times)
        assert first.keys() == second.keys()
        for obstacle_id in first:
            assert np.array_equal(first[obstacle_id], second[obstacle_id]), obstacle_id

    def test_at_time_matches_predicted_positions(self):
        """The CO prediction helper and at_time agree sample-for-sample."""
        scenario = build_scenario(PATROL_CONFIG)
        patrol = scenario.dynamic_obstacles[-1]
        predicted = patrol.predicted_positions(start_time=3.7, dt=0.25, horizon=24)
        for step in range(24):
            moved = patrol.at_time(3.7 + (step + 1) * 0.25)
            assert np.array_equal(predicted[step], moved.box.center)


class TestCrossBackendPatrolPositions:
    def test_patrol_traces_bitwise_identical_on_every_backend(self):
        """Patrol-bearing episodes are identical across *all* executor backends.

        ``min_obstacle_distance`` is a function of the patrol positions at
        every step and is folded into each episode's ``trace_hash``, so the
        single asserted invariant — equal hash lists on every backend — pins
        that every backend (including the serialized-scenario rebuild inside
        each worker process) sampled identical patrol trajectories.
        """
        from repro.api import BACKENDS

        spec = BatchSpec(
            method="expert",
            seeds=(5, 6),
            difficulties=(DifficultyLevel.NORMAL,),
            spawn_mode=SpawnMode.CLOSE,
            scenario_name="legacy",
            max_steps=40,
        )
        outcomes = {
            backend: BatchExecutor(
                backend=backend, max_workers=2, summary_stream=None
            ).run(spec)
            for backend in BACKENDS
        }
        hash_lists = {
            backend: [result.trace_hash for result in outcome.results]
            for backend, outcome in outcomes.items()
        }
        assert len({tuple(hashes) for hashes in hash_lists.values()}) == 1, hash_lists

        thread, process = outcomes["thread"], outcomes["process"]
        assert thread.results == process.results
        for thread_trace, process_trace in zip(thread.traces, process.traces):
            assert np.array_equal(
                thread_trace.min_obstacle_distances, process_trace.min_obstacle_distances
            )
            assert np.array_equal(thread_trace.positions, process_trace.positions)


class TestTimegridMatchesSimulatedPatrols:
    def test_slices_cover_world_patrol_positions(self):
        """Every simulated patrol position lies inside its slice's sweep."""
        scenario = build_scenario(PATROL_CONFIG)
        timegrid = TimeGrid.from_scenario(scenario)
        for step in range(0, 400, 7):
            time = step * 0.1
            for obstacle in scenario.dynamic_obstacles:
                moved = obstacle.at_time(time)
                centre = np.asarray(moved.box.center, dtype=float).reshape(1, 2)
                bound = float(timegrid.clearance_at(centre, time)[0]) - timegrid.slack
                assert bound <= 1e-9, (
                    f"{obstacle.obstacle_id} at t={time:.1f} escapes its slice"
                )
