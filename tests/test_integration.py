"""Integration tests across modules: full episodes and the node-graph platform.

These tests run complete (but short) parking episodes and therefore take a
few seconds each; they are the end-to-end safety net for the stack.
"""


from repro.api import EpisodeSpec
from repro.api.session import run_episode_spec
from repro.metaverse import MoCAMPlatform, Topics
from repro.world.scenario import DifficultyLevel, ScenarioConfig, SpawnMode, build_scenario
from repro.world.world import EpisodeStatus


class TestFullEpisodes:
    def test_co_method_parks_on_easy_scenario(self, small_policy):
        config = ScenarioConfig(difficulty=DifficultyLevel.EASY, spawn_mode=SpawnMode.CLOSE, seed=2)
        outcome = run_episode_spec(
            EpisodeSpec(method="co", scenario=config, time_limit=80.0),
            il_policy=small_policy,
        )
        result, trace = outcome.result, outcome.trace
        assert result.status is EpisodeStatus.PARKED
        assert result.parking_time < 80.0
        # The maneuver must contain a reverse-driving phase.
        assert trace.reverse.any()

    def test_icoil_with_untrained_policy_falls_back_to_co(self, small_policy):
        """An untrained IL policy has near-uniform outputs, so HSA should keep
        iCOIL in the CO mode and the episode should still succeed."""
        config = ScenarioConfig(difficulty=DifficultyLevel.EASY, spawn_mode=SpawnMode.CLOSE, seed=2)
        outcome = run_episode_spec(
            EpisodeSpec(method="icoil", scenario=config, time_limit=80.0),
            il_policy=small_policy,
        )
        result = outcome.result
        assert result.status is EpisodeStatus.PARKED
        assert result.co_mode_fraction > 0.5

    def test_trace_lengths_consistent(self, small_policy):
        config = ScenarioConfig(difficulty=DifficultyLevel.NORMAL, spawn_mode=SpawnMode.CLOSE, seed=4)
        outcome = run_episode_spec(
            EpisodeSpec(method="icoil", scenario=config, time_limit=15.0, max_steps=30),
            il_policy=small_policy,
        )
        result, trace = outcome.result, outcome.trace
        assert trace.num_frames == result.num_steps
        for array in (trace.steering, trace.velocities, trace.uncertainties, trace.hsa_scores):
            assert array.shape == (result.num_steps,)


class TestMoCAMPlatform:
    def test_platform_episode_runs_node_graph(self, small_policy):
        scenario = build_scenario(
            ScenarioConfig(difficulty=DifficultyLevel.EASY, spawn_mode=SpawnMode.CLOSE, seed=2)
        )
        platform = MoCAMPlatform(scenario, small_policy, time_limit=30.0)
        result = platform.run_episode(max_duration=12.0)
        # All pipeline topics must have traffic.
        assert platform.bus.publish_count(Topics.BEV_IMAGE) > 0
        assert platform.bus.publish_count(Topics.IL_COMMAND) > 0
        assert platform.bus.publish_count(Topics.CO_COMMAND) > 0
        assert platform.bus.publish_count(Topics.HSA_STATUS) > 0
        assert platform.bus.publish_count(Topics.CONTROL_COMMAND) > 0
        # The vehicle actually moved under the published commands.
        assert result.num_frames > 0
        assert platform.world.state.distance_to(
            platform.world.trajectory[0]
        ) > 0.5
        # The HSA trace carries one mode label per status message.
        assert set(result.mode_trace) <= {"il", "co"}

    def test_platform_respects_hard_level_noise(self, small_policy):
        scenario = build_scenario(
            ScenarioConfig(difficulty=DifficultyLevel.HARD, spawn_mode=SpawnMode.CLOSE, seed=2)
        )
        platform = MoCAMPlatform(scenario, small_policy, time_limit=10.0)
        platform.run_episode(max_duration=3.0)
        assert platform.bus.publish_count(Topics.DETECTIONS) > 0
