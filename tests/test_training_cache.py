"""Tests for the default-policy training/caching helper."""

import numpy as np
import pytest

from repro.eval.training import default_policy_path, train_default_policy


class TestTrainDefaultPolicy:
    def test_trains_and_caches(self, tmp_path, rng):
        cache = tmp_path / "policy.npz"
        policy, report, dataset = train_default_policy(
            num_episodes=1, epochs=1, cache_path=cache, force_retrain=True
        )
        assert cache.exists()
        assert report is not None
        assert len(dataset) > 0

        # Second call loads from the cache: no report, identical outputs.
        reloaded, reload_report, _ = train_default_policy(
            num_episodes=1, epochs=1, cache_path=cache
        )
        assert reload_report is None
        image = rng.random((3, 32, 32))
        assert np.allclose(
            reloaded.predict_probabilities(image), policy.predict_probabilities(image)
        )

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            train_default_policy(num_episodes=0)

    def test_default_policy_path_location(self):
        path = default_policy_path()
        assert path.name == "il_policy.npz"
        assert path.parent.name == "artifacts"
