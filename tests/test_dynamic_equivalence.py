"""The time-aware stack is safe against the *moving* obstacles.

Three layers of guarantees:

* the time-aware hybrid A* path, replayed at its own ``arrival_times``
  schedule, is exactly collision-free against every dynamic obstacle
  advanced to those times (not just against the static scene),
* full time-aware expert episodes on patrol-bearing presets park, and the
  executed trajectory never intersects a patrol at any simulated step
  (re-checked here with exact geometry, independently of the world's own
  termination logic),
* with no dynamic obstacles (or the layer disabled) everything degrades to
  the static stack bit-identically — static presets stay at 8/8 through
  ``tests/test_expert_presets.py`` and the planner equivalence suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import BatchExecutor, EpisodeSpec, TimeLayerSpec
from repro.geometry.collision import shapes_collide
from repro.il.expert import ExpertDriver
from repro.planning.hybrid_astar import HybridAStarPlanner
from repro.spatial import SpatialIndex, TimeGrid
from repro.vehicle.params import VehicleParams
from repro.world import (
    DifficultyLevel,
    ScenarioConfig,
    SpawnMode,
    build_scenario,
)

# Patrol-bearing planning problems: (scenario, seed) on NORMAL difficulty
# (two aisle-crossing patrols each).
PLANNING_CASES = [("legacy", 1), ("perpendicular-easy", 1), ("angled-easy", 3)]

# Full-episode cases currently parked by the time-aware expert; regressions
# here mean the anticipative path lost against the moving scene.
EPISODE_CASES = [("legacy", 1), ("legacy", 4), ("perpendicular-easy", 2)]


def _patrol_scenario(name: str, seed: int):
    return build_scenario(
        ScenarioConfig(
            scenario_name=name,
            difficulty=DifficultyLevel.NORMAL,
            spawn_mode=SpawnMode.REMOTE,
            seed=seed,
        )
    )


class TestTimeAwarePlanner:
    @pytest.mark.parametrize("scenario_name,seed", PLANNING_CASES)
    def test_path_collision_free_at_scheduled_times(self, scenario_name, seed):
        scenario = _patrol_scenario(scenario_name, seed)
        assert scenario.dynamic_obstacles, "case must carry patrols"
        params = VehicleParams()
        expert = ExpertDriver(scenario.lot, scenario.obstacles, params)
        static = scenario.static_obstacles
        staging, _ = expert.final_maneuver(static)

        index = SpatialIndex(scenario.lot, static, params)
        timegrid = TimeGrid.from_scenario(scenario, vehicle_params=params)
        index.attach_time_layer(timegrid)
        planner = HybridAStarPlanner(params)
        result = planner.plan(
            scenario.start_pose, staging, static, scenario.lot, spatial_index=index
        )
        assert result.success, f"{scenario_name}: time-aware planner failed"
        assert result.arrival_times is not None
        assert len(result.arrival_times) == len(result.path.waypoints)
        # Times are monotone non-decreasing (waits are plateaus, never jumps
        # backwards).
        times = np.asarray(result.arrival_times)
        assert (np.diff(times) >= -1e-9).all()

        # Exact replay: the margin-free footprint at every waypoint misses
        # every dynamic obstacle advanced to that waypoint's arrival time,
        # and the midpoint of every segment misses them at the midpoint time.
        waypoints = result.path.waypoints
        for index_wp, (waypoint, arrival) in enumerate(zip(waypoints, times)):
            footprint = planner._footprint(waypoint.pose, margin=0.0).to_polygon()
            for obstacle in timegrid.obstacles_at(float(arrival)):
                assert not shapes_collide(footprint, obstacle.box.to_polygon()), (
                    f"{scenario_name}: waypoint {index_wp} hits {obstacle.obstacle_id} "
                    f"at t={arrival:.2f}"
                )
        for (a, ta), (b, tb) in zip(
            zip(waypoints[:-1], times[:-1]), zip(waypoints[1:], times[1:])
        ):
            mid_pose = a.pose.interpolate(b.pose, 0.5)
            mid_time = 0.5 * (float(ta) + float(tb))
            footprint = planner._footprint(mid_pose, margin=0.0).to_polygon()
            for obstacle in timegrid.obstacles_at(mid_time):
                assert not shapes_collide(footprint, obstacle.box.to_polygon())

    def test_empty_timegrid_matches_static_planner_exactly(self):
        """An empty dynamic layer must not perturb the search at all."""
        scenario = build_scenario(
            ScenarioConfig(
                scenario_name="perpendicular-easy",
                spawn_mode=SpawnMode.REMOTE,
                seed=1,
            )
        )
        params = VehicleParams()
        expert = ExpertDriver(scenario.lot, scenario.obstacles, params)
        static = scenario.static_obstacles
        staging, _ = expert.final_maneuver(static)
        planner = HybridAStarPlanner(params)

        index = SpatialIndex(scenario.lot, static, params)
        plain = planner.plan(
            scenario.start_pose, staging, static, scenario.lot, spatial_index=index
        )
        index.attach_time_layer(TimeGrid.from_scenario(scenario, vehicle_params=params))
        assert index.time_layer.empty
        layered = planner.plan(
            scenario.start_pose, staging, static, scenario.lot, spatial_index=index
        )
        assert layered.expanded_nodes == plain.expanded_nodes
        assert [w.pose for w in layered.path.waypoints] == [
            w.pose for w in plain.path.waypoints
        ]

    def test_start_inside_patrol_window_falls_back_to_static(self):
        """A spawn inside a patrol's swept window still produces a plan."""
        scenario = _patrol_scenario("legacy", 1)
        params = VehicleParams()
        patrol = scenario.dynamic_obstacles[0]
        start_position, heading = patrol.position_at(0.0)
        from repro.geometry.se2 import SE2

        start = SE2(float(start_position[0]), float(start_position[1]), 0.0)
        index = SpatialIndex(scenario.lot, scenario.static_obstacles, params)
        index.attach_time_layer(TimeGrid.from_scenario(scenario, vehicle_params=params))
        planner = HybridAStarPlanner(params)
        result = planner.plan(
            start,
            scenario.lot.goal_pose,
            scenario.static_obstacles,
            scenario.lot,
            spatial_index=index,
        )
        # The fallback may or may not reach the goal from inside the
        # corridor, but it must not crash and must report a result.
        assert result is not None


class TestTimeAwareExpertEpisodes:
    @pytest.mark.parametrize("scenario_name,seed", EPISODE_CASES)
    def test_expert_parks_and_never_touches_a_patrol(self, scenario_name, seed):
        spec = EpisodeSpec(
            method="expert",
            scenario=ScenarioConfig(
                scenario_name=scenario_name,
                difficulty=DifficultyLevel.NORMAL,
                spawn_mode=SpawnMode.REMOTE,
                seed=seed,
            ),
            time_layer=TimeLayerSpec(enabled=True),
            time_limit=80.0,
        )
        outcome = BatchExecutor(summary_stream=None).run_specs([spec])
        result = outcome.results[0]
        assert result.success, (
            f"time-aware expert failed on {scenario_name} seed {seed}: {result.status}"
        )

        # Independent exact re-check of the executed trajectory against the
        # moving obstacles at every simulated step.
        scenario = build_scenario(spec.scenario)
        params = VehicleParams()
        trace = outcome.traces[0]
        for step_index in range(len(trace.times)):
            time = float(trace.times[step_index])
            x, y = trace.positions[step_index]
            heading = float(trace.headings[step_index])
            from repro.vehicle.state import VehicleState
            from repro.geometry.se2 import SE2

            footprint = VehicleState.from_pose(SE2(float(x), float(y), heading)).footprint(
                params
            ).to_polygon()
            for obstacle in scenario.dynamic_obstacles:
                moved = obstacle.at_time(time)
                assert not shapes_collide(footprint, moved.box.to_polygon()), (
                    f"trajectory intersects {obstacle.obstacle_id} at t={time:.1f}"
                )

    def test_disabled_layer_restores_reactive_baseline(self):
        """``enabled=False`` must reproduce the pre-time-layer behaviour."""
        scenario_config = ScenarioConfig(
            scenario_name="legacy",
            difficulty=DifficultyLevel.NORMAL,
            spawn_mode=SpawnMode.REMOTE,
            seed=1,
        )
        disabled = EpisodeSpec(
            method="expert",
            scenario=scenario_config,
            time_layer=TimeLayerSpec(enabled=False),
            max_steps=60,
        )
        outcome_a = BatchExecutor(summary_stream=None).run_specs([disabled])
        outcome_b = BatchExecutor(summary_stream=None).run_specs([disabled])
        assert outcome_a.results == outcome_b.results
        assert np.array_equal(outcome_a.traces[0].positions, outcome_b.traces[0].positions)
